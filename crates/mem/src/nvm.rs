//! Fabric-attached NVM timing model.

use fam_sim::stats::Counter;
use fam_sim::{BankedResource, Cycle, Duration, Frequency, Window};

/// Whether a memory operation reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// A load / read.
    Read,
    /// A store / write.
    Write,
}

impl MemOpKind {
    /// True for [`MemOpKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, MemOpKind::Write)
    }
}

/// Configuration of the FAM NVM device (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmConfig {
    /// Read latency in nanoseconds (paper: 60 ns).
    pub read_ns: u64,
    /// Write latency in nanoseconds (paper: 150 ns).
    pub write_ns: u64,
    /// Independent banks (paper: 32).
    pub banks: usize,
    /// Maximum outstanding requests (paper: 128).
    pub max_outstanding: usize,
    /// Per-request bank occupancy in cycles (command/data bus time).
    pub bank_occupancy_cycles: u64,
}

impl Default for NvmConfig {
    /// The paper's FAM configuration (Table II).
    fn default() -> NvmConfig {
        NvmConfig {
            read_ns: 60,
            write_ns: 150,
            banks: 32,
            max_outstanding: 128,
            bank_occupancy_cycles: 8,
        }
    }
}

/// The fabric-attached NVM: banked, read/write asymmetric, with a cap
/// on outstanding requests.
///
/// A request first waits for an outstanding-request slot (at most 128
/// in flight), then for its bank (selected by block-address
/// interleaving), then completes after the read or write latency.
///
/// # Examples
///
/// ```
/// use fam_mem::{MemOpKind, NvmConfig, NvmModel};
/// use fam_sim::{Cycle, Frequency};
///
/// let mut nvm = NvmModel::new(Frequency::ghz(2), NvmConfig::default());
/// let done = nvm.access(Cycle(0), 0x4000, MemOpKind::Read);
/// assert_eq!(done, Cycle(120)); // 60 ns read at 2 GHz
/// ```
#[derive(Debug, Clone)]
pub struct NvmModel {
    read_latency: Duration,
    write_latency: Duration,
    banks: BankedResource,
    window: Window,
    reads: Counter,
    writes: Counter,
}

impl NvmModel {
    /// Creates an NVM device at core frequency `freq`.
    pub fn new(freq: Frequency, config: NvmConfig) -> NvmModel {
        NvmModel {
            read_latency: freq.ns_to_cycles(config.read_ns),
            write_latency: freq.ns_to_cycles(config.write_ns),
            banks: BankedResource::new(config.banks, config.bank_occupancy_cycles),
            window: Window::new(config.max_outstanding),
            reads: Counter::new(),
            writes: Counter::new(),
        }
    }

    /// Services an operation on the block containing `byte_addr`
    /// arriving at `now`; returns the completion time.
    pub fn access(&mut self, now: Cycle, byte_addr: u64, kind: MemOpKind) -> Cycle {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Nvm);
        match kind {
            MemOpKind::Read => self.reads.inc(),
            MemOpKind::Write => self.writes.inc(),
        }
        let admitted = self.window.admit(now);
        let line = crate::line_of(byte_addr);
        let start = self.banks.acquire(admitted, line);
        let done = start
            + match kind {
                MemOpKind::Read => self.read_latency,
                MemOpKind::Write => self.write_latency,
            };
        self.window.record_completion(done);
        done
    }

    /// The read latency in cycles.
    pub fn read_latency(&self) -> Duration {
        self.read_latency
    }

    /// The write latency in cycles.
    pub fn write_latency(&self) -> Duration {
        self.write_latency
    }

    /// Total reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads.value()
    }

    /// Total writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes.value()
    }

    /// Requests delayed by the outstanding-request cap.
    pub fn admission_stalls(&self) -> u64 {
        self.window.stalls()
    }

    /// Resets timelines and statistics.
    pub fn reset(&mut self) {
        self.banks.reset();
        self.window.reset();
        self.reads.reset();
        self.writes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvm() -> NvmModel {
        NvmModel::new(Frequency::ghz(2), NvmConfig::default())
    }

    #[test]
    fn read_write_asymmetry() {
        let mut n = nvm();
        assert_eq!(n.access(Cycle(0), 0, MemOpKind::Read), Cycle(120));
        // Different bank so no queueing: write takes 300 cycles.
        assert_eq!(n.access(Cycle(0), 64, MemOpKind::Write), Cycle(300));
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut n = nvm();
        let a = n.access(Cycle(0), 0, MemOpKind::Read);
        // 32 banks; block 32 maps back to bank 0.
        let b = n.access(Cycle(0), 32 * 64, MemOpKind::Read);
        assert_eq!(a, Cycle(120));
        assert_eq!(b, Cycle(128)); // 8-cycle bank occupancy
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut n = nvm();
        let a = n.access(Cycle(0), 0, MemOpKind::Read);
        let b = n.access(Cycle(0), 64, MemOpKind::Read);
        assert_eq!(a, b);
    }

    #[test]
    fn outstanding_cap_delays_admission() {
        let cfg = NvmConfig {
            max_outstanding: 2,
            ..NvmConfig::default()
        };
        let mut n = NvmModel::new(Frequency::ghz(2), cfg);
        n.access(Cycle(0), 0, MemOpKind::Read);
        n.access(Cycle(0), 64, MemOpKind::Read);
        // Third request must wait for one of the two to finish (120).
        let c = n.access(Cycle(0), 128, MemOpKind::Read);
        assert_eq!(c, Cycle(240));
        assert_eq!(n.admission_stalls(), 1);
    }

    #[test]
    fn counters_track_ops() {
        let mut n = nvm();
        n.access(Cycle(0), 0, MemOpKind::Read);
        n.access(Cycle(0), 0, MemOpKind::Write);
        assert_eq!(n.reads(), 1);
        assert_eq!(n.writes(), 1);
        n.reset();
        assert_eq!(n.reads() + n.writes(), 0);
    }
}
