//! Memory substrate for the DeACT reproduction.
//!
//! Provides the node-side memory system the paper configures in
//! Table II:
//!
//! * [`SetAssocCache`] — a generic set-associative cache with LRU or
//!   random replacement, reused for data caches, TLBs, page-table-walk
//!   caches and the STU cache organisations.
//! * [`CacheHierarchy`] — private L1/L2 per core plus a shared,
//!   inclusive L3 (32 KB / 256 KB / 1 MB, 64 B blocks, LRU).
//! * [`DramModel`] — the 1 GB local DRAM with a contended channel.
//! * [`NvmModel`] — the 16 GB fabric-attached NVM: 32 banks, 60 ns
//!   reads, 150 ns writes, at most 128 outstanding requests.
//!
//! # Examples
//!
//! ```
//! use fam_mem::{CacheConfig, Replacement, SetAssocCache};
//!
//! let mut l1 = SetAssocCache::new(CacheConfig::new(64, 8, Replacement::Lru));
//! assert!(!l1.access(0x1000).hit);
//! assert!(l1.access(0x1000).hit);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod dram;
mod hierarchy;
mod nvm;

pub use cache::{AccessOutcome, CacheConfig, Replacement, SetAssocCache};
pub use dram::DramModel;
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HitLevel, LookupResult};
pub use nvm::{MemOpKind, NvmConfig, NvmModel};

/// Cache block (line) size used throughout the paper: 64 bytes.
pub const BLOCK_BYTES: u64 = 64;

/// Converts a byte address to its cache-line address.
///
/// # Examples
///
/// ```
/// assert_eq!(fam_mem::line_of(0), 0);
/// assert_eq!(fam_mem::line_of(63), 0);
/// assert_eq!(fam_mem::line_of(64), 1);
/// ```
pub fn line_of(byte_addr: u64) -> u64 {
    byte_addr / BLOCK_BYTES
}
