//! The node's three-level data-cache hierarchy.

use fam_sim::stats::Ratio;
use fam_sim::Duration;

use crate::{CacheConfig, SetAssocCache};

/// Which cache level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Private per-core L1.
    L1,
    /// Private per-core L2.
    L2,
    /// Shared L3 (last-level cache).
    L3,
}

/// Outcome of a hierarchy lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The level that hit, or `None` on an LLC miss (memory must be
    /// accessed by the caller).
    pub level: Option<HitLevel>,
    /// Cycles spent traversing the hierarchy (lookup latency of every
    /// level visited). On an LLC miss the caller adds memory latency.
    pub latency: Duration,
    /// A dirty line evicted from the LLC by this access's fill, if any;
    /// the caller is responsible for writing it back to memory.
    pub writeback: Option<u64>,
}

/// Geometry and latencies of the L1/L2/L3 hierarchy (Table II:
/// 32 KB / 256 KB / 1 MB, 64 B blocks, LRU, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 lookup latency in cycles.
    pub l1_latency: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 lookup latency in cycles.
    pub l2_latency: u64,
    /// Shared L3 capacity in bytes.
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 lookup latency in cycles.
    pub l3_latency: u64,
}

impl Default for HierarchyConfig {
    /// The paper's hierarchy (Table II) with conventional lookup
    /// latencies (4 / 12 / 38 cycles).
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_latency: 4,
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            l2_latency: 12,
            l3_bytes: 1024 * 1024,
            l3_ways: 16,
            l3_latency: 38,
        }
    }
}

/// Private L1/L2 caches per core plus a shared, inclusive L3.
///
/// Keys are cache-line addresses ([`crate::line_of`]). Lines track a
/// dirty bit; dirty LLC evictions are surfaced to the caller as
/// writebacks so the NVM write asymmetry is exercised. Inclusivity is
/// enforced: an L3 eviction back-invalidates the line from every
/// private cache, as in the paper's inclusive configuration.
///
/// # Examples
///
/// ```
/// use fam_mem::{CacheHierarchy, HierarchyConfig, HitLevel};
///
/// let mut h = CacheHierarchy::new(4, HierarchyConfig::default());
/// let first = h.access(0, 0x40, false);
/// assert_eq!(first.level, None); // cold miss
/// let again = h.access(0, 0x40, false);
/// assert_eq!(again.level, Some(HitLevel::L1));
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<SetAssocCache<bool>>,
    l2: Vec<SetAssocCache<bool>>,
    l3: SetAssocCache<bool>,
    config: HierarchyConfig,
    llc: Ratio,
}

impl CacheHierarchy {
    /// Creates a hierarchy for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or any capacity does not divide into
    /// its geometry.
    pub fn new(cores: usize, config: HierarchyConfig) -> CacheHierarchy {
        assert!(cores > 0, "need at least one core");
        let l1_cfg = CacheConfig::data_cache(config.l1_bytes, config.l1_ways);
        let l2_cfg = CacheConfig::data_cache(config.l2_bytes, config.l2_ways);
        let l3_cfg = CacheConfig::data_cache(config.l3_bytes, config.l3_ways);
        CacheHierarchy {
            l1: (0..cores).map(|_| SetAssocCache::new(l1_cfg)).collect(),
            l2: (0..cores).map(|_| SetAssocCache::new(l2_cfg)).collect(),
            l3: SetAssocCache::new(l3_cfg),
            config,
            llc: Ratio::new(),
        }
    }

    /// Looks up the line at `line_addr` for `core`, filling all levels
    /// on miss (inclusive). `is_write` marks the line dirty.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, line_addr: u64, is_write: bool) -> LookupResult {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::CacheHierarchy);
        let mut latency = Duration(self.config.l1_latency);

        if let Some(dirty) = self.l1[core].get_mut(line_addr) {
            *dirty |= is_write;
            return LookupResult {
                level: Some(HitLevel::L1),
                latency,
                writeback: None,
            };
        }
        latency += Duration(self.config.l2_latency);
        if let Some(dirty) = self.l2[core].get_mut(line_addr) {
            *dirty |= is_write;
            self.fill_l1(core, line_addr, is_write);
            return LookupResult {
                level: Some(HitLevel::L2),
                latency,
                writeback: None,
            };
        }
        latency += Duration(self.config.l3_latency);
        if let Some(dirty) = self.l3.get_mut(line_addr) {
            *dirty |= is_write;
            self.llc.hit();
            self.fill_l2(core, line_addr, is_write);
            self.fill_l1(core, line_addr, is_write);
            return LookupResult {
                level: Some(HitLevel::L3),
                latency,
                writeback: None,
            };
        }

        // LLC miss: fill all levels, enforce inclusion on L3 eviction.
        self.llc.miss();
        let mut writeback = None;
        if let Some((victim_line, mut victim_dirty)) = self.l3.insert(line_addr, is_write) {
            for (l1, l2) in self.l1.iter_mut().zip(&mut self.l2) {
                victim_dirty |= l1.invalidate(victim_line).unwrap_or(false);
                victim_dirty |= l2.invalidate(victim_line).unwrap_or(false);
            }
            if victim_dirty {
                writeback = Some(victim_line);
            }
        }
        self.fill_l2(core, line_addr, is_write);
        self.fill_l1(core, line_addr, is_write);
        LookupResult {
            level: None,
            latency,
            writeback,
        }
    }

    /// Fills a line into `core`'s L1; a dirty victim's bit is written
    /// back into L2 (or L3) rather than lost, so a later LLC eviction
    /// still sees the line as dirty.
    fn fill_l1(&mut self, core: usize, line_addr: u64, is_write: bool) {
        if let Some((victim, true)) = self.l1[core].insert(line_addr, is_write) {
            if let Some(dirty) = self.l2[core].peek_mut(victim) {
                *dirty = true;
            } else if let Some(dirty) = self.l3.peek_mut(victim) {
                *dirty = true;
            }
        }
    }

    /// Fills a line into `core`'s L2, propagating a dirty victim's bit
    /// into L3.
    fn fill_l2(&mut self, core: usize, line_addr: u64, is_write: bool) {
        if let Some((victim, true)) = self.l2[core].insert(line_addr, is_write) {
            if let Some(dirty) = self.l3.peek_mut(victim) {
                *dirty = true;
            }
        }
    }

    /// Predicts, without side effects, whether an immediately
    /// following [`CacheHierarchy::access`] to `line_addr` would hit
    /// (at some level) rather than miss the LLC.
    ///
    /// L3 residency is exact for this: the hierarchy is inclusive
    /// (private caches only ever hold L3-resident lines — fills happen
    /// together with an L3 fill, and an L3 eviction back-invalidates
    /// every private copy), so L1/L2 residency implies L3 residency,
    /// and every hit path of `access` leaves the hierarchy contents
    /// untouched (`writeback` is always `None` on a hit).
    pub fn would_hit(&self, line_addr: u64) -> bool {
        self.l3.probe(line_addr)
    }

    /// The line a fill of `line_addr` would evict from the LLC (and,
    /// by inclusion, from the whole hierarchy): `None` when the access
    /// would hit or the L3 set still has room. The companion of
    /// [`CacheHierarchy::would_hit`] for callers that must predict
    /// where a miss's eviction would write back before deciding to
    /// perform the access.
    pub fn would_evict(&self, line_addr: u64) -> Option<u64> {
        self.l3.peek_victim(line_addr)
    }

    /// Probes whether a line is resident anywhere, without side
    /// effects.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.l3.probe(line_addr)
            || self.l1.iter().any(|c| c.probe(line_addr))
            || self.l2.iter().any(|c| c.probe(line_addr))
    }

    /// LLC (L3) hit/miss statistics — the paper's MPKI is computed
    /// against these misses.
    pub fn llc_stats(&self) -> Ratio {
        self.llc
    }

    /// Lookup latency to the point of an LLC miss (all three levels).
    pub fn miss_path_latency(&self) -> Duration {
        Duration(self.config.l1_latency + self.config.l2_latency + self.config.l3_latency)
    }

    /// The configured geometry.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Number of cores served.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Drops all cached lines and statistics.
    pub fn clear(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.l3.clear();
        self.llc.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheHierarchy {
        // Small hierarchy so evictions are easy to trigger:
        // L1 = 4 lines, L2 = 8 lines, L3 = 16 lines.
        CacheHierarchy::new(
            2,
            HierarchyConfig {
                l1_bytes: 4 * 64,
                l1_ways: 2,
                l1_latency: 4,
                l2_bytes: 8 * 64,
                l2_ways: 2,
                l2_latency: 12,
                l3_bytes: 16 * 64,
                l3_ways: 2,
                l3_latency: 38,
            },
        )
    }

    #[test]
    fn miss_then_l1_hit() {
        let mut h = small();
        let r = h.access(0, 100, false);
        assert_eq!(r.level, None);
        assert_eq!(r.latency, Duration(54)); // full lookup path
        let r = h.access(0, 100, false);
        assert_eq!(r.level, Some(HitLevel::L1));
        assert_eq!(r.latency, Duration(4));
    }

    #[test]
    fn private_caches_are_per_core_but_l3_is_shared() {
        let mut h = small();
        h.access(0, 100, false);
        // Core 1 misses its private caches but hits shared L3.
        let r = h.access(1, 100, false);
        assert_eq!(r.level, Some(HitLevel::L3));
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = small();
        h.access(0, 0, false);
        // Fill L1 set 0 (2 ways, 2 sets -> lines 0,2,4 map to set 0).
        h.access(0, 2, false);
        h.access(0, 4, false); // evicts line 0 from L1; still in L2
        let r = h.access(0, 0, false);
        assert_eq!(r.level, Some(HitLevel::L2));
    }

    #[test]
    fn inclusive_l3_eviction_back_invalidates() {
        let mut h = small();
        h.access(0, 0, false);
        // Evict line 0 from L3 by filling its set (L3: 8 sets, 2 ways;
        // lines 0, 8, 16 share set 0).
        h.access(0, 8, false);
        h.access(0, 16, false);
        assert!(!h.contains(0), "inclusion: line 0 gone everywhere");
        let r = h.access(0, 0, false);
        assert_eq!(r.level, None, "back-invalidated line misses in L1 too");
    }

    #[test]
    fn dirty_llc_eviction_reports_writeback() {
        let mut h = small();
        h.access(0, 0, true); // dirty
        h.access(0, 8, false);
        let r = h.access(0, 16, false); // evicts dirty line 0 from L3
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut h = small();
        h.access(0, 0, false);
        h.access(0, 8, false);
        let r = h.access(0, 16, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_in_l1_marks_dirty_for_later_writeback() {
        let mut h = small();
        h.access(0, 0, false); // clean fill
        h.access(0, 0, true); // dirtied in L1
        h.access(0, 8, false);
        let r = h.access(0, 16, false);
        // Dirty bit was set in L1, not L3; back-invalidation must
        // propagate it into the writeback decision.
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn dirty_bit_survives_l1_eviction() {
        let mut h = small();
        h.access(0, 0, true); // dirty in L1
                              // Evict line 0 from L1 (set 0 holds lines {0,2,4}; 2 ways).
        h.access(0, 2, false);
        h.access(0, 4, false);
        assert!(h.contains(0), "still in L2/L3");
        // Now push line 0 out of the LLC: its dirtiness must have been
        // propagated on the L1 eviction, yielding a writeback.
        h.access(0, 8, false);
        let r = h.access(0, 16, false);
        assert_eq!(r.writeback, Some(0), "dirty bit lost on L1 eviction");
    }

    #[test]
    fn dirty_propagation_does_not_disturb_llc_stats() {
        let mut h = small();
        h.access(0, 0, true);
        let before = h.llc_stats().total();
        h.access(0, 2, false); // may propagate dirty victim silently
        h.access(0, 4, false);
        // Only the two real accesses were counted at the LLC.
        assert_eq!(h.llc_stats().total(), before + 2);
    }

    #[test]
    fn llc_stats_count_only_l3_outcomes() {
        let mut h = small();
        h.access(0, 0, false); // LLC miss
        h.access(0, 0, false); // L1 hit: not an LLC event
        h.access(1, 0, false); // L3 hit
        assert_eq!(h.llc_stats().misses(), 1);
        assert_eq!(h.llc_stats().hits(), 1);
    }

    #[test]
    fn would_hit_predicts_access_outcome() {
        let mut h = small();
        assert!(!h.would_hit(0));
        h.access(0, 0, false);
        assert!(h.would_hit(0), "L3-resident after the fill");
        // L1/L2 residency implies L3 residency (inclusion), so the
        // prediction holds for a different core too.
        assert!(h.would_hit(0));
        let r = h.access(1, 0, false);
        assert!(r.level.is_some());
        // After an L3 eviction, prediction flips to miss everywhere.
        h.access(0, 8, false);
        h.access(0, 16, false);
        assert!(!h.would_hit(0));
        assert_eq!(h.access(0, 0, false).level, None);
    }

    #[test]
    fn would_evict_predicts_the_llc_victim() {
        let mut h = small();
        h.access(0, 0, false);
        assert_eq!(h.would_evict(0), None, "would hit, no eviction");
        h.access(0, 8, false); // L3 set 0 now full (2 ways)
        assert_eq!(h.would_evict(16), Some(0), "LRU line 0 is the victim");
        let r = h.access(0, 16, false);
        assert_eq!(r.level, None);
        assert!(!h.contains(0), "prediction matched the real eviction");
    }

    #[test]
    fn paper_default_geometry() {
        let h = CacheHierarchy::new(4, HierarchyConfig::default());
        assert_eq!(h.cores(), 4);
        assert_eq!(h.miss_path_latency(), Duration(54));
    }

    #[test]
    fn clear_empties_everything() {
        let mut h = small();
        h.access(0, 0, false);
        h.clear();
        assert!(!h.contains(0));
        assert_eq!(h.llc_stats().total(), 0);
    }
}
