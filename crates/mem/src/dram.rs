//! Local DRAM timing model.

use fam_sim::stats::Counter;
use fam_sim::{Cycle, Duration, Frequency, Resource};

/// The node-local DRAM (1 GB in Table II).
///
/// Modelled as a fixed access latency behind a contended channel: a
/// request arriving at `now` waits for the channel, occupies it for the
/// transfer time of one 64-byte block, and completes one access latency
/// after service starts.
///
/// # Examples
///
/// ```
/// use fam_mem::DramModel;
/// use fam_sim::{Cycle, Frequency};
///
/// let mut dram = DramModel::new(Frequency::ghz(2), 60, 2);
/// let done = dram.access(Cycle(0), 0x1000);
/// assert_eq!(done, Cycle(120)); // 60 ns at 2 GHz
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    latency: Duration,
    channel: Resource,
    reads: Counter,
    writes: Counter,
}

impl DramModel {
    /// Creates a DRAM with `access_ns` latency and `occupancy_cycles`
    /// channel occupancy per block transfer, at core frequency `freq`.
    pub fn new(freq: Frequency, access_ns: u64, occupancy_cycles: u64) -> DramModel {
        DramModel {
            latency: freq.ns_to_cycles(access_ns),
            channel: Resource::new(occupancy_cycles),
            reads: Counter::new(),
            writes: Counter::new(),
        }
    }

    /// A read of the block containing `byte_addr` arriving at `now`;
    /// returns the completion time.
    pub fn access(&mut self, now: Cycle, byte_addr: u64) -> Cycle {
        let _ = byte_addr; // single channel: address does not matter
        self.reads.inc();
        let start = self.channel.acquire(now);
        start + self.latency
    }

    /// A write of the block containing `byte_addr` arriving at `now`;
    /// returns the completion time. Writes have the same latency as
    /// reads in DRAM.
    pub fn write(&mut self, now: Cycle, byte_addr: u64) -> Cycle {
        let _ = byte_addr;
        self.writes.inc();
        let start = self.channel.acquire(now);
        start + self.latency
    }

    /// The configured access latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Total reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads.value()
    }

    /// Total writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes.value()
    }

    /// Resets the channel timeline and statistics.
    pub fn reset(&mut self) {
        self.channel.reset();
        self.reads.reset();
        self.writes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel::new(Frequency::ghz(2), 60, 2)
    }

    #[test]
    fn latency_is_converted_to_cycles() {
        assert_eq!(dram().latency(), Duration(120));
    }

    #[test]
    fn back_to_back_requests_queue_on_channel() {
        let mut d = dram();
        let a = d.access(Cycle(0), 0);
        let b = d.access(Cycle(0), 64);
        assert_eq!(a, Cycle(120));
        assert_eq!(b, Cycle(122)); // 2-cycle channel occupancy
    }

    #[test]
    fn idle_channel_adds_no_queueing() {
        let mut d = dram();
        d.access(Cycle(0), 0);
        assert_eq!(d.access(Cycle(1000), 0), Cycle(1120));
    }

    #[test]
    fn read_write_counters() {
        let mut d = dram();
        d.access(Cycle(0), 0);
        d.write(Cycle(0), 0);
        d.write(Cycle(0), 0);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 2);
        d.reset();
        assert_eq!(d.reads(), 0);
    }
}
