//! A generic set-associative cache.

use fam_sim::stats::Ratio;
use fam_sim::SimRng;

/// Replacement policy for a [`SetAssocCache`].
///
/// The paper's data caches and TLBs use LRU (Table II); the in-DRAM FAM
/// translation cache uses random replacement because tracking recency
/// would require extra DRAM writes (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict a uniformly random way.
    Random,
}

/// Geometry and policy of a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be non-zero).
    pub sets: usize,
    /// Ways per set (must be non-zero).
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize, replacement: Replacement) -> CacheConfig {
        assert!(sets > 0, "cache needs at least one set");
        assert!(ways > 0, "cache needs at least one way");
        CacheConfig {
            sets,
            ways,
            replacement,
        }
    }

    /// Total entry capacity.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Convenience: geometry for a data cache of `capacity_bytes` with
    /// 64-byte blocks and the given associativity, LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `64 * ways`.
    pub fn data_cache(capacity_bytes: u64, ways: usize) -> CacheConfig {
        let blocks = capacity_bytes / crate::BLOCK_BYTES;
        assert_eq!(
            capacity_bytes % (crate::BLOCK_BYTES * ways as u64),
            0,
            "capacity must divide evenly into sets"
        );
        CacheConfig::new((blocks / ways as u64) as usize, ways, Replacement::Lru)
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome<V = ()> {
    /// Whether the key was present.
    pub hit: bool,
    /// The key (with its value) evicted to make room, if any.
    pub evicted: Option<(u64, V)>,
}

/// Tag value marking an empty way. Keys are addresses or page
/// numbers, which never reach `u64::MAX` in practice; the constructor
/// rejects nothing, but inserting this exact key is unsupported.
const EMPTY: u64 = u64::MAX;

/// A set-associative cache mapping `u64` keys to values, with hit/miss
/// statistics.
///
/// Keys are full addresses or page numbers; the set index is
/// `key % sets` and the full key is stored as the tag, so there are no
/// aliasing artifacts regardless of geometry.
///
/// This single structure backs the data caches, TLBs, PTW caches, the
/// STU cache organisations and the in-DRAM FAM translation cache, each
/// with its own geometry and value type.
///
/// # Examples
///
/// ```
/// use fam_mem::{CacheConfig, Replacement, SetAssocCache};
///
/// let mut tlb: SetAssocCache<u64> =
///     SetAssocCache::new(CacheConfig::new(16, 2, Replacement::Lru));
/// tlb.insert(0x42, 0x99);
/// assert_eq!(tlb.get(0x42), Some(&0x99));
/// assert_eq!(tlb.stats().hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<V = ()> {
    config: CacheConfig,
    /// Tags of all ways of all sets, contiguous: set `i` occupies
    /// `i * ways .. (i + 1) * ways`, with [`EMPTY`] marking free ways.
    /// Tags, recency stamps and values are parallel arrays rather than
    /// an array of structs: a lookup on the simulation's hottest path
    /// then scans only the densely-packed tags — one or two cache
    /// lines per set — instead of striding over stamps and values it
    /// rarely needs.
    keys: Vec<u64>,
    /// Recency stamps; larger is more recent. Parallel to `keys`.
    stamps: Vec<u64>,
    /// Cached values; parallel to `keys`. `None` iff the way is empty.
    values: Vec<Option<V>>,
    /// `sets - 1` when the set count is a power of two, else 0. Set
    /// selection is on the critical load chain of every lookup, and
    /// all the simulator's cache geometries are powers of two, so a
    /// mask here turns the hardware-divide in `key % sets` into an
    /// AND.
    set_mask: u64,
    clock: u64,
    stats: Ratio,
    rng: SimRng,
}

impl<V> SetAssocCache<V> {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> SetAssocCache<V> {
        SetAssocCache::with_seed(config, 0xCACE)
    }

    /// Creates an empty cache with an explicit RNG seed (relevant only
    /// for [`Replacement::Random`]).
    pub fn with_seed(config: CacheConfig, seed: u64) -> SetAssocCache<V> {
        let entries = config.entries();
        let mut values = Vec::new();
        values.resize_with(entries, || None);
        let sets = config.sets as u64;
        SetAssocCache {
            config,
            keys: vec![EMPTY; entries],
            stamps: vec![0; entries],
            values,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            clock: 0,
            stats: Ratio::new(),
            rng: SimRng::seeded(seed),
        }
    }

    /// First slot of `key`'s set in the flat way array.
    fn set_start(&self, key: u64) -> usize {
        let set = if self.set_mask != 0 {
            (key & self.set_mask) as usize
        } else {
            (key % self.config.sets as u64) as usize
        };
        set * self.config.ways
    }

    /// The slot holding `key`, if resident. Every lookup flavour —
    /// counted or not, shared or mutable — resolves residency through
    /// this one helper, so `access`-style methods and their
    /// side-effect-free `probe`/`peek` counterparts can never disagree
    /// about what is in the cache.
    fn find(&self, key: u64) -> Option<usize> {
        let start = self.set_start(key);
        self.keys[start..start + self.config.ways]
            .iter()
            .position(|&k| k == key)
            .map(|w| start + w)
    }

    /// An empty way in `key`'s set, if any.
    fn vacancy(&self, key: u64) -> Option<usize> {
        let start = self.set_start(key);
        self.keys[start..start + self.config.ways]
            .iter()
            .position(|&k| k == EMPTY)
            .map(|w| start + w)
    }

    /// The slot a full set would evict under LRU: the minimum recency
    /// stamp. Shared by [`SetAssocCache::insert`] and
    /// [`SetAssocCache::peek_victim`], so the prediction and the real
    /// eviction are one decision procedure.
    fn lru_victim(&self, key: u64) -> usize {
        let start = self.set_start(key);
        self.stamps[start..start + self.config.ways]
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .map(|(w, _)| start + w)
            .expect("at least one way")
    }

    /// Looks up `key`, updating recency and hit/miss statistics, and
    /// returns a reference to its value if present.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.clock += 1;
        match self.find(key) {
            Some(i) => {
                self.stamps[i] = self.clock;
                self.stats.hit();
                self.values[i].as_ref()
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Looks up `key` and returns a mutable reference to its value,
    /// updating recency and statistics.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.clock += 1;
        match self.find(key) {
            Some(i) => {
                self.stamps[i] = self.clock;
                self.stats.hit();
                self.values[i].as_mut()
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Checks for `key` without updating recency or statistics.
    pub fn probe(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Shared access to `key`'s value without touching recency or
    /// hit/miss statistics — the value-returning counterpart of
    /// [`SetAssocCache::probe`], for predicting what a later real
    /// access would observe.
    pub fn peek(&self, key: u64) -> Option<&V> {
        self.find(key).and_then(|i| self.values[i].as_ref())
    }

    /// The key that `insert(key, …)` would evict right now, without
    /// changing anything: `None` when `key` is already resident or its
    /// set still has room. Exact only for LRU replacement — predicting
    /// a `Random` victim would consume RNG state and so perturb the
    /// very outcome being predicted.
    pub fn peek_victim(&self, key: u64) -> Option<u64> {
        debug_assert_eq!(
            self.config.replacement,
            Replacement::Lru,
            "random replacement victims cannot be predicted"
        );
        if self.vacancy(key).is_some() || self.find(key).is_some() {
            return None;
        }
        Some(self.keys[self.lru_victim(key)])
    }

    /// Mutable access to `key`'s value without touching recency or
    /// hit/miss statistics — for metadata maintenance (e.g. a dirty
    /// bit propagated by an outer cache level) that is not a real
    /// access.
    pub fn peek_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).and_then(|i| self.values[i].as_mut())
    }

    /// Inserts `key → value`, evicting if the set is full. Returns the
    /// evicted entry, if any. Re-inserting an existing key replaces its
    /// value and refreshes recency without eviction.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        debug_assert_ne!(key, EMPTY, "the all-ones key is reserved");
        self.clock += 1;
        let clock = self.clock;

        // One fused scan finds the resident way, the first empty way
        // and the LRU way together; inserts run on every modelled
        // cache miss, so the set is walked once, not three times. The
        // outcomes are exactly [`Self::find`] / [`Self::vacancy`] /
        // [`Self::lru_victim`]: first match, first empty, first
        // minimum stamp.
        let start = self.set_start(key);
        let mut found = usize::MAX;
        let mut empty = usize::MAX;
        let mut lru = start;
        let mut lru_stamp = u64::MAX;
        for i in start..start + self.config.ways {
            let k = self.keys[i];
            if k == key {
                found = i;
                break;
            }
            if k == EMPTY && empty == usize::MAX {
                empty = i;
            }
            if self.stamps[i] < lru_stamp {
                lru_stamp = self.stamps[i];
                lru = i;
            }
        }
        if found != usize::MAX {
            self.values[found] = Some(value);
            self.stamps[found] = clock;
            return None;
        }
        if empty != usize::MAX {
            self.keys[empty] = key;
            self.stamps[empty] = clock;
            self.values[empty] = Some(value);
            return None;
        }
        let victim = match self.config.replacement {
            Replacement::Lru => lru,
            Replacement::Random => start + self.rng.index(self.config.ways),
        };
        let old_key = std::mem::replace(&mut self.keys[victim], key);
        let old_value = self.values[victim].replace(value);
        self.stamps[victim] = clock;
        Some((old_key, old_value.expect("full set has no empty ways")))
    }

    /// Removes `key` if present, returning its value.
    pub fn invalidate(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        self.keys[i] = EMPTY;
        self.values[i].take()
    }

    /// Removes every entry whose key satisfies `pred`, returning how
    /// many were removed. Used for shootdowns (page migration, §VI).
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u64) -> bool) -> usize {
        let mut removed = 0;
        for (i, k) in self.keys.iter_mut().enumerate() {
            if *k != EMPTY && pred(*k) {
                *k = EMPTY;
                self.values[i] = None;
                removed += 1;
            }
        }
        removed
    }

    /// Keeps only entries whose `(key, &value)` pair satisfies `pred`,
    /// returning how many were removed. The value-aware twin of
    /// [`SetAssocCache::invalidate_matching`], for shootdowns that
    /// must match on cached payloads (e.g. PTEs naming quarantined
    /// FAM frames rather than the virtual keys that index them).
    pub fn retain(&mut self, mut pred: impl FnMut(u64, &V) -> bool) -> usize {
        let mut removed = 0;
        for (i, k) in self.keys.iter_mut().enumerate() {
            if *k == EMPTY {
                continue;
            }
            let keep = self.values[i]
                .as_ref()
                .map(|v| pred(*k, v))
                .expect("non-empty way has a value");
            if !keep {
                *k = EMPTY;
                self.values[i] = None;
                removed += 1;
            }
        }
        removed
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.keys.iter().filter(|&&k| k != EMPTY).count()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss statistics accumulated by `get`/`get_mut`/`access`.
    pub fn stats(&self) -> Ratio {
        self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drops all entries and statistics.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        for v in &mut self.values {
            *v = None;
        }
        self.stats.reset();
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys
            .iter()
            .zip(&self.values)
            .filter_map(|(&k, v)| v.as_ref().map(|v| (k, v)))
    }
}

impl<V: Clone> SetAssocCache<V> {
    /// Access `key`; on miss, insert the value produced by `fill`.
    /// Returns the outcome (hit flag plus any eviction).
    pub fn access_with(&mut self, key: u64, fill: impl FnOnce() -> V) -> AccessOutcome<V> {
        if self.get(key).is_some() {
            AccessOutcome {
                hit: true,
                evicted: None,
            }
        } else {
            let evicted = self.insert(key, fill());
            AccessOutcome {
                hit: false,
                evicted,
            }
        }
    }
}

impl SetAssocCache<()> {
    /// Access `key` in a unit-valued cache, filling on miss.
    pub fn access(&mut self, key: u64) -> AccessOutcome<()> {
        self.access_with(key, || ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, replacement: Replacement) -> SetAssocCache<u32> {
        SetAssocCache::new(CacheConfig::new(1, ways, replacement))
    }

    #[test]
    fn retain_filters_on_values_and_counts_removals() {
        let mut c = tiny(4, Replacement::Lru);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        let removed = c.retain(|_key, &v| v < 25);
        assert_eq!(removed, 1, "only the value 30 fails the predicate");
        assert_eq!(c.peek(1), Some(&10));
        assert_eq!(c.peek(2), Some(&20));
        assert_eq!(c.peek(3), None, "30 was shot down");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        assert_eq!(c.get(1), Some(&10));
        assert_eq!(c.get(2), None);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(1); // 2 is now LRU
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.probe(1));
        assert!(c.probe(3));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.get(1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn random_replacement_evicts_someone() {
        let mut c = tiny(4, Replacement::Random);
        for k in 0..4 {
            c.insert(k, k as u32);
        }
        let evicted = c.insert(99, 99);
        assert!(evicted.is_some());
        assert_eq!(c.len(), 4);
        assert!(c.probe(99));
    }

    #[test]
    fn set_indexing_separates_keys() {
        let mut c: SetAssocCache<u32> =
            SetAssocCache::new(CacheConfig::new(4, 1, Replacement::Lru));
        // Keys 0..4 land in distinct sets; no evictions.
        for k in 0..4 {
            assert_eq!(c.insert(k, 0), None);
        }
        // Key 4 collides with key 0 (4 % 4 == 0).
        assert_eq!(c.insert(4, 0), Some((0, 0)));
    }

    #[test]
    fn probe_does_not_affect_stats_or_recency() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.probe(1));
        assert_eq!(c.stats().total(), 0);
        // Recency untouched: 1 is still LRU, gets evicted.
        assert_eq!(c.insert(3, 30), Some((1, 10)));
    }

    #[test]
    fn peek_victim_predicts_lru_eviction() {
        let mut c = tiny(2, Replacement::Lru);
        assert_eq!(c.peek_victim(1), None, "room in the set");
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(1); // 2 is now LRU
        assert_eq!(c.peek_victim(1), None, "resident key never evicts");
        assert_eq!(c.peek_victim(3), Some(2));
        assert_eq!(c.stats().total(), 1, "only the get counted");
        assert_eq!(c.insert(3, 30), Some((2, 20)), "prediction matches");
    }

    #[test]
    fn peek_reads_without_side_effects() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.peek(1), Some(&10));
        assert_eq!(c.peek(3), None);
        assert_eq!(c.stats().total(), 0);
        // Recency untouched: 1 is still LRU, gets evicted.
        assert_eq!(c.insert(3, 30), Some((1, 10)));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        assert_eq!(c.invalidate(1), Some(10));
        assert_eq!(c.invalidate(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_matching_sweeps() {
        let mut c: SetAssocCache<u32> =
            SetAssocCache::new(CacheConfig::new(8, 2, Replacement::Lru));
        for k in 0..16 {
            c.insert(k, 0);
        }
        let removed = c.invalidate_matching(|k| k % 2 == 0);
        assert_eq!(removed, 8);
        assert_eq!(c.len(), 8);
        assert!(c.iter().all(|(k, _)| k % 2 == 1));
    }

    #[test]
    fn access_with_fills_on_miss() {
        let mut c = tiny(2, Replacement::Lru);
        let out = c.access_with(5, || 50);
        assert!(!out.hit);
        let out = c.access_with(5, || 99);
        assert!(out.hit);
        assert_eq!(c.get(5), Some(&50), "fill only runs on miss");
    }

    #[test]
    fn unit_cache_access() {
        let mut c = SetAssocCache::new(CacheConfig::new(2, 2, Replacement::Lru));
        assert!(!c.access(7).hit);
        assert!(c.access(7).hit);
    }

    #[test]
    fn data_cache_geometry() {
        // 32 KB, 8-way, 64 B blocks -> 64 sets.
        let cfg = CacheConfig::data_cache(32 * 1024, 8);
        assert_eq!(cfg.sets, 64);
        assert_eq!(cfg.ways, 8);
        assert_eq!(cfg.entries(), 512);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        c.get(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = CacheConfig::new(1, 0, Replacement::Lru);
    }

    /// The fast path trusts `probe`/`peek`/`peek_victim` to predict
    /// what `get`/`insert` will do. Because all of them resolve
    /// residency through [`SetAssocCache::find`] and evictions through
    /// [`SetAssocCache::lru_victim`], the prediction and the mutation
    /// are one decision procedure — this test hammers that agreement
    /// with a randomized, heavily-aliasing access stream.
    #[test]
    fn probes_agree_with_accesses_under_random_streams() {
        let mut rng = SimRng::seeded(0xA93E);
        let mut c: SetAssocCache<u64> =
            SetAssocCache::new(CacheConfig::new(8, 4, Replacement::Lru));
        for step in 0..20_000u64 {
            // 64 keys over 8 sets of 4 ways: constant aliasing, so
            // every branch (hit, vacancy fill, eviction) is exercised.
            let key = rng.below(64);
            let predicted_hit = c.probe(key);
            assert_eq!(predicted_hit, c.peek(key).is_some());
            let predicted_victim = c.peek_victim(key);
            if predicted_hit {
                assert_eq!(predicted_victim, None, "resident keys never evict");
            }
            if rng.chance(0.5) {
                assert_eq!(
                    c.get(key).is_some(),
                    predicted_hit,
                    "probe disagreed with a counted lookup at step {step}"
                );
            } else {
                let evicted = c.insert(key, step);
                assert_eq!(
                    evicted.map(|(k, _)| k),
                    predicted_victim,
                    "peek_victim disagreed with a real insert at step {step}"
                );
                assert!(c.probe(key), "inserted key must be resident");
                assert_eq!(c.peek(key), Some(&step));
            }
        }
        assert!(c.stats().total() > 0, "the stream exercised counted paths");
    }

    #[test]
    fn get_mut_allows_in_place_update() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(1, 10);
        if let Some(v) = c.get_mut(1) {
            *v = 42;
        }
        assert_eq!(c.get(1), Some(&42));
    }
}
