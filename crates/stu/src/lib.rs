//! The System Translation Unit (STU).
//!
//! The STU is the off-node hardware that vets every access to the
//! shared FAM (§II-C). It sits at the first router connecting a node
//! to the fabric, caches system-level state, and walks the FAM
//! (system) page table on misses. It is the paper's analogue of the
//! Gen-Z ZMMU.
//!
//! What the STU caches differs per scheme (Fig. 8):
//!
//! * **I-FAM** — each way holds a full `(node page → FAM page, ACM)`
//!   entry: translation and access control coupled together.
//! * **DeACT-W** — translation is decoupled away (it lives in the
//!   node's local DRAM), so each way repurposes the freed 52 bits to
//!   hold the ACM of several *contiguous* pages (4 at 16-bit ACM).
//! * **DeACT-N** — each way is split into sub-ways holding independent
//!   `(44-bit tag, ACM)` pairs for *arbitrary* pages (2 pairs at
//!   16-bit ACM), which survives the FAM's random allocation order.
//!
//! # Examples
//!
//! ```
//! use fam_stu::{Stu, StuConfig, StuOrganization};
//!
//! let mut stu = Stu::new(StuConfig {
//!     organization: StuOrganization::DeactN,
//!     ..StuConfig::default()
//! });
//! assert!(!stu.acm_lookup(1234));
//! stu.acm_fill(1234);
//! assert!(stu.acm_lookup(1234));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod unit;

pub use cache::{StuCache, StuConfig, StuOrganization};
pub use unit::{DeactVerification, IFamTranslation, Stu, StuStats, UnmappedFault};
