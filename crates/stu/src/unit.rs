//! The STU proper: verification and FAM page-table walking.

use fam_broker::{AccessKind, MemoryBroker};
use fam_sim::stats::Counter;
use fam_sim::RequestId;
use fam_vm::{NodeId, PageWalker, PtwCache, WalkPlan};

use crate::{StuCache, StuConfig};

/// Counters the STU accumulates, beyond the cache's own hit ratio.
#[derive(Debug, Clone, Copy, Default)]
pub struct StuStats {
    /// FAM page-table walks performed.
    pub walks: Counter,
    /// Entry reads issued by those walks (each is a FAM access).
    pub walk_reads: Counter,
    /// ACM metadata blocks fetched from FAM (DeACT miss path).
    pub acm_fetches: Counter,
    /// Sharing-bitmap fetches from FAM (shared pages only).
    pub bitmap_fetches: Counter,
    /// Accesses vetted.
    pub verifications: Counter,
    /// Accesses denied.
    pub denials: Counter,
}

/// Outcome of an I-FAM STU access: coupled translation + verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IFamTranslation {
    /// The request whose packet this access served (echoed back so the
    /// caller can attribute the walk/fetch costs to the right trace
    /// span).
    pub req: RequestId,
    /// The FAM page backing the node page.
    pub fam_page: u64,
    /// Whether the STU cache held the entry.
    pub cache_hit: bool,
    /// On a miss, the FAM page-table walk that was performed; each
    /// access is a read the timing layer must charge to the FAM.
    pub walk: Option<WalkPlan>,
    /// Whether the access passed verification.
    pub allowed: bool,
}

/// Outcome of a DeACT verification (the `V = 1` fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeactVerification {
    /// The request whose packet this verification served.
    pub req: RequestId,
    /// Whether the ACM was resident in the STU cache.
    pub acm_hit: bool,
    /// FAM byte address of the metadata block fetched on a miss
    /// (§III-A address arithmetic), if any.
    pub acm_fetch_addr: Option<u64>,
    /// FAM byte address of the sharing bitmap fetched when the entry
    /// marks the page shared, if any.
    pub bitmap_fetch_addr: Option<u64>,
    /// Whether the access passed verification.
    pub allowed: bool,
}

/// A fault the STU cannot resolve alone: the node address has no
/// system-level mapping, so the memory broker must allocate
/// (§II-C: an address-translation-service request to the broker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnmappedFault {
    /// The request whose packet hit the hole.
    pub req: RequestId,
    /// The faulting node-physical page.
    pub npa_page: u64,
    /// The walk performed before discovering the hole (still costs
    /// FAM reads).
    pub walk_reads: usize,
}

impl std::fmt::Display for UnmappedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no system mapping for node page {:#x}", self.npa_page)
    }
}

impl std::error::Error for UnmappedFault {}

/// One node's System Translation Unit.
///
/// Holds the organisation-specific [`StuCache`], a 32-entry PTW cache
/// for FAM page-table walks (the Bhargava-et-al. optimisation granted to all
/// schemes, §IV), and verification counters. Ground truth (system page
/// tables and ACM) lives in the [`MemoryBroker`]; the STU's caches
/// only determine how often that truth must be re-fetched from FAM.
///
/// # Examples
///
/// ```
/// use fam_broker::{AccessKind, BrokerConfig, MemoryBroker};
/// use fam_sim::RequestId;
/// use fam_stu::{Stu, StuConfig, StuOrganization};
///
/// let mut broker = MemoryBroker::new(BrokerConfig::default());
/// let node = broker.register_node().unwrap();
/// let fam_page = broker.demand_map(node, 0x100).unwrap();
///
/// let mut stu = Stu::new(StuConfig {
///     organization: StuOrganization::DeactN,
///     ..StuConfig::default()
/// });
/// let v = stu.verify(&broker, node, fam_page, AccessKind::Read, RequestId::UNTRACED);
/// assert!(v.allowed);
/// assert!(!v.acm_hit); // first touch fetches the metadata block
/// ```
#[derive(Debug)]
pub struct Stu {
    cache: StuCache,
    ptw_cache: PtwCache,
    stats: StuStats,
}

impl Stu {
    /// Default PTW-cache entries granted to the walker (§IV grants 32
    /// at the paper's full memory scale; systems scaled down for
    /// simulation speed should scale this reach too).
    pub const PTW_CACHE_ENTRIES: usize = 32;

    /// Creates an STU with the given cache configuration and the
    /// default PTW-cache size.
    pub fn new(config: StuConfig) -> Stu {
        Stu::with_ptw_entries(config, Self::PTW_CACHE_ENTRIES)
    }

    /// Creates an STU with an explicit FAM-PTW cache size.
    ///
    /// # Panics
    ///
    /// Panics if `ptw_entries` is zero.
    pub fn with_ptw_entries(config: StuConfig, ptw_entries: usize) -> Stu {
        Stu {
            cache: StuCache::new(config),
            ptw_cache: PtwCache::new(ptw_entries),
            stats: StuStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> StuConfig {
        self.cache.config()
    }

    /// Read-only access to the organisation-specific cache (admission
    /// probes).
    pub fn cache(&self) -> &StuCache {
        &self.cache
    }

    /// Direct access to the organisation-specific cache.
    pub fn cache_mut(&mut self) -> &mut StuCache {
        &mut self.cache
    }

    /// DeACT ACM lookup without verification (timing-only probes).
    pub fn acm_lookup(&mut self, fam_page: u64) -> bool {
        self.cache.acm_lookup(fam_page)
    }

    /// DeACT ACM fill (after a modelled metadata fetch).
    pub fn acm_fill(&mut self, fam_page: u64) {
        self.cache.acm_fill(fam_page)
    }

    /// The I-FAM data path: translate a node page and verify the
    /// access in one coupled step (Fig. 2b).
    ///
    /// On a cache miss the STU walks the node's system page table; the
    /// returned [`WalkPlan`] lists the FAM reads to charge.
    ///
    /// # Errors
    ///
    /// Returns [`UnmappedFault`] when the system table has no mapping;
    /// the caller asks the broker to demand-map and retries.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not registered with the broker, or if this
    /// STU is not configured with the I-FAM organisation.
    pub fn ifam_access(
        &mut self,
        broker: &MemoryBroker,
        node: NodeId,
        npa_page: u64,
        kind: AccessKind,
        req: RequestId,
    ) -> Result<IFamTranslation, UnmappedFault> {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Stu);
        self.stats.verifications.inc();
        if let Some(fam_page) = self.cache.ifam_lookup(npa_page) {
            let allowed = broker.check_access(node, fam_page, kind);
            if !allowed {
                self.stats.denials.inc();
            }
            return Ok(IFamTranslation {
                req,
                fam_page,
                cache_hit: true,
                walk: None,
                allowed,
            });
        }
        let (fam_page, walk) = self.walk_system_table(broker, node, npa_page, req)?;
        self.cache.ifam_fill(npa_page, fam_page);
        let allowed = broker.check_access(node, fam_page, kind);
        if !allowed {
            self.stats.denials.inc();
        }
        Ok(IFamTranslation {
            req,
            fam_page,
            cache_hit: false,
            walk: Some(walk),
            allowed,
        })
    }

    /// The DeACT verification path (`V = 1` packets): the request
    /// already carries a FAM address; only access control is checked
    /// (§III-D). On an ACM-cache miss the metadata block address is
    /// derived from the FAM address alone and reported for timing.
    ///
    /// # Panics
    ///
    /// Panics if this STU is configured with the I-FAM organisation.
    pub fn verify(
        &mut self,
        broker: &MemoryBroker,
        node: NodeId,
        fam_page: u64,
        kind: AccessKind,
        req: RequestId,
    ) -> DeactVerification {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Stu);
        self.stats.verifications.inc();
        let layout = broker.layout();
        let fam_addr = fam_vm::FamAddr(fam_page * fam_vm::PAGE_BYTES);
        let acm_hit = self.cache.acm_lookup(fam_page);
        let mut acm_fetch_addr = None;
        let mut bitmap_fetch_addr = None;
        if !acm_hit {
            acm_fetch_addr = Some(layout.acm_addr(fam_addr));
            self.stats.acm_fetches.inc();
            self.cache.acm_fill(fam_page);
            // If the freshly read entry marks the page shared, the
            // relevant bitmap words are fetched immediately (§III-A).
            if broker.acm().entry(fam_page).is_some_and(|e| e.is_shared()) {
                bitmap_fetch_addr = Some(layout.bitmap_addr(fam_addr));
                self.stats.bitmap_fetches.inc();
            }
        }
        let allowed = broker.check_access(node, fam_page, kind);
        if !allowed {
            self.stats.denials.inc();
        }
        DeactVerification {
            req,
            acm_hit,
            acm_fetch_addr,
            bitmap_fetch_addr,
            allowed,
        }
    }

    /// Walks the node's system page table (the FAM-PTW of Fig. 6 ④),
    /// used for `V = 0` packets and I-FAM misses.
    ///
    /// # Errors
    ///
    /// Returns [`UnmappedFault`] when no mapping exists.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not registered with the broker.
    pub fn walk_system_table(
        &mut self,
        broker: &MemoryBroker,
        node: NodeId,
        npa_page: u64,
        req: RequestId,
    ) -> Result<(u64, WalkPlan), UnmappedFault> {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Stu);
        let table = broker
            .system_table(node)
            .expect("node must be registered before issuing requests");
        self.stats.walks.inc();
        let plan = PageWalker::plan(table, Some(&mut self.ptw_cache), npa_page);
        self.stats.walk_reads.add(plan.reads() as u64);
        match plan.mapping {
            Some(pte) => Ok((pte.target_page, plan)),
            None => Err(UnmappedFault {
                req,
                npa_page,
                walk_reads: plan.reads(),
            }),
        }
    }

    /// Invalidates state for a page (migration shootdown, §VI). Pass
    /// the node page for I-FAM, the FAM page for DeACT.
    pub fn invalidate_page(&mut self, key_page: u64) {
        self.cache.invalidate(key_page);
    }

    /// Flushes all cached state (including the PTW cache).
    pub fn flush(&mut self) {
        self.cache.flush();
        self.ptw_cache.flush();
    }

    /// Applies a permanent-failure shootdown: invalidates the cached
    /// entry for every key page in the worklist (node pages for I-FAM,
    /// FAM pages for DeACT) and flushes the FAM-PTW cache — relocated
    /// table pages make every cached interior entry's address suspect.
    /// Returns the number of invalidation operations performed (one
    /// per key plus one for the PTW flush), the quantity the timing
    /// layer charges per entry.
    pub fn shootdown(&mut self, key_pages: impl IntoIterator<Item = u64>) -> u64 {
        let mut ops = 0u64;
        for key in key_pages {
            self.cache.invalidate(key);
            ops += 1;
        }
        self.ptw_cache.flush();
        ops + 1
    }

    /// ACM hit/miss ratio (Fig. 9 series).
    pub fn acm_stats(&self) -> fam_sim::stats::Ratio {
        self.cache.acm_stats()
    }

    /// Walk/fetch/verification counters.
    pub fn stats(&self) -> StuStats {
        self.stats
    }

    /// Resets statistics, keeping cached state.
    pub fn reset_stats(&mut self) {
        self.stats = StuStats::default();
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StuOrganization;
    use fam_broker::BrokerConfig;
    use fam_vm::PtFlags;

    const REQ: RequestId = RequestId::UNTRACED;

    fn setup(org: StuOrganization) -> (MemoryBroker, NodeId, Stu) {
        let mut broker = MemoryBroker::new(BrokerConfig {
            fam_bytes: 2 << 30,
            ..BrokerConfig::default()
        });
        let node = broker.register_node().unwrap();
        let stu = Stu::new(StuConfig {
            organization: org,
            ..StuConfig::default()
        });
        (broker, node, stu)
    }

    #[test]
    fn ifam_miss_walks_then_hits() {
        let (mut broker, node, mut stu) = setup(StuOrganization::IFam);
        let fam_page = broker.demand_map(node, 0x50).unwrap();
        let t = stu
            .ifam_access(&broker, node, 0x50, AccessKind::Read, REQ)
            .unwrap();
        assert_eq!(t.fam_page, fam_page);
        assert!(!t.cache_hit);
        assert_eq!(t.walk.as_ref().unwrap().reads(), 4);
        assert!(t.allowed);

        let t2 = stu
            .ifam_access(&broker, node, 0x50, AccessKind::Read, REQ)
            .unwrap();
        assert!(t2.cache_hit);
        assert!(t2.walk.is_none());
        assert_eq!(stu.stats().walks.value(), 1);
        assert_eq!(stu.stats().walk_reads.value(), 4);
    }

    #[test]
    fn ifam_unmapped_faults_to_broker() {
        let (broker, node, mut stu) = setup(StuOrganization::IFam);
        let err = stu
            .ifam_access(&broker, node, 0x99, AccessKind::Read, REQ)
            .unwrap_err();
        assert_eq!(err.npa_page, 0x99);
        assert!(err.walk_reads >= 1);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn ifam_denies_foreign_access() {
        let (mut broker, node, mut stu) = setup(StuOrganization::IFam);
        let intruder = broker.register_node().unwrap();
        broker.demand_map(node, 0x10).unwrap();
        // The intruder somehow issues a request for the victim's node
        // page: the walk uses *the intruder's* table, which has no such
        // mapping -> fault, not leak.
        assert!(stu
            .ifam_access(&broker, intruder, 0x10, AccessKind::Read, REQ)
            .is_err());
    }

    #[test]
    fn deact_verify_fetches_metadata_once() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        let fam_page = broker.demand_map(node, 0x10).unwrap();
        let v1 = stu.verify(&broker, node, fam_page, AccessKind::Read, REQ);
        assert!(v1.allowed);
        assert!(!v1.acm_hit);
        let expected = broker
            .layout()
            .acm_addr(fam_vm::FamAddr(fam_page * fam_vm::PAGE_BYTES));
        assert_eq!(v1.acm_fetch_addr, Some(expected));
        assert_eq!(v1.bitmap_fetch_addr, None, "owned page needs no bitmap");

        let v2 = stu.verify(&broker, node, fam_page, AccessKind::Read, REQ);
        assert!(v2.acm_hit);
        assert_eq!(v2.acm_fetch_addr, None);
        assert_eq!(stu.stats().acm_fetches.value(), 1);
    }

    #[test]
    fn deact_verify_denies_foreign_page() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        let intruder = broker.register_node().unwrap();
        let fam_page = broker.demand_map(node, 0x10).unwrap();
        let v = stu.verify(&broker, intruder, fam_page, AccessKind::Read, REQ);
        assert!(!v.allowed, "decoupling must not bypass access control");
        assert_eq!(stu.stats().denials.value(), 1);
    }

    #[test]
    fn deact_verify_write_permission_checked() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        let fam_page = broker.demand_map(node, 0x10).unwrap();
        assert!(
            stu.verify(&broker, node, fam_page, AccessKind::Write, REQ)
                .allowed
        );
        assert!(
            !stu.verify(&broker, node, fam_page, AccessKind::Execute, REQ)
                .allowed,
            "demand-mapped pages are RW, not X"
        );
    }

    #[test]
    fn shared_page_miss_also_fetches_bitmap() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        let seg = broker
            .share_segment(4, &[(node, PtFlags::rw(), 0x200)])
            .unwrap();
        let v = stu.verify(&broker, node, seg.first_page, AccessKind::Write, REQ);
        assert!(v.allowed);
        assert!(v.bitmap_fetch_addr.is_some());
        assert_eq!(stu.stats().bitmap_fetches.value(), 1);
        // Once cached, no more fetches.
        let v2 = stu.verify(&broker, node, seg.first_page, AccessKind::Write, REQ);
        assert!(v2.acm_hit);
        assert_eq!(v2.bitmap_fetch_addr, None);
    }

    #[test]
    fn walk_reuses_ptw_cache() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        broker.demand_map(node, 0x40).unwrap();
        broker.demand_map(node, 0x41).unwrap();
        let (_, plan1) = stu.walk_system_table(&broker, node, 0x40, REQ).unwrap();
        assert_eq!(plan1.reads(), 4);
        // Neighbouring page: interior levels are PTW-cached.
        let (_, plan2) = stu.walk_system_table(&broker, node, 0x41, REQ).unwrap();
        assert_eq!(plan2.reads(), 1);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        let fam_page = broker.demand_map(node, 0x10).unwrap();
        stu.verify(&broker, node, fam_page, AccessKind::Read, REQ);
        stu.invalidate_page(fam_page);
        let v = stu.verify(&broker, node, fam_page, AccessKind::Read, REQ);
        assert!(!v.acm_hit);
    }

    #[test]
    fn shootdown_invalidates_entries_and_ptw_cache() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        let fam_a = broker.demand_map(node, 0x40).unwrap();
        let fam_b = broker.demand_map(node, 0x41).unwrap();
        stu.verify(&broker, node, fam_a, AccessKind::Read, REQ);
        stu.verify(&broker, node, fam_b, AccessKind::Read, REQ);
        stu.walk_system_table(&broker, node, 0x40, REQ).unwrap();
        let ops = stu.shootdown([fam_a]);
        assert_eq!(ops, 2, "one entry + the PTW flush");
        // The shot-down page re-fetches; the survivor still hits.
        assert!(
            !stu.verify(&broker, node, fam_a, AccessKind::Read, REQ)
                .acm_hit
        );
        assert!(
            stu.verify(&broker, node, fam_b, AccessKind::Read, REQ)
                .acm_hit
        );
        // The PTW cache went cold: a neighbouring walk re-reads all
        // four levels.
        let (_, plan) = stu.walk_system_table(&broker, node, 0x41, REQ).unwrap();
        assert_eq!(plan.reads(), 4);
    }

    #[test]
    fn flush_clears_ptw_cache_too() {
        let (mut broker, node, mut stu) = setup(StuOrganization::DeactN);
        broker.demand_map(node, 0x40).unwrap();
        stu.walk_system_table(&broker, node, 0x40, REQ).unwrap();
        stu.flush();
        let (_, plan) = stu.walk_system_table(&broker, node, 0x40, REQ).unwrap();
        assert_eq!(plan.reads(), 4, "cold walk after flush");
    }
}
