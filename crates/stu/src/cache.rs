//! The three STU cache-way organisations of Fig. 8.

use fam_broker::AcmWidth;
use fam_mem::{CacheConfig, Replacement, SetAssocCache};
use fam_sim::stats::Ratio;

/// Which Fig. 8 way organisation the STU cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuOrganization {
    /// Fig. 8(a): coupled `(npa tag, FAM page, ACM)` entries.
    IFam,
    /// Fig. 8(b): way-level contiguous ACM — the 52 bits freed by
    /// decoupling translation hold the ACM of adjacent pages.
    DeactW,
    /// Fig. 8(c): non-contiguous sub-ways — independent
    /// `(44-bit tag, ACM)` pairs per way.
    DeactN,
}

/// STU cache geometry and organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuConfig {
    /// Number of sets (paper: 128).
    pub sets: usize,
    /// Ways per set (paper: 8 — Haswell L2-TLB-like, §IV).
    pub ways: usize,
    /// Way organisation.
    pub organization: StuOrganization,
    /// ACM entry width (determines packing, Fig. 14).
    pub acm_width: AcmWidth,
    /// For [`StuOrganization::DeactN`]: tag/ACM pairs per way.
    /// `None` uses the width's natural packing (2 pairs at 8/16-bit,
    /// 1 pair at 32-bit); §V-D2's experimental 3-pair 8-bit variant
    /// passes `Some(3)`.
    pub pairs_per_way: Option<usize>,
}

impl Default for StuConfig {
    /// The paper's STU: 1024 entries as 128 sets × 8 ways, 16-bit ACM,
    /// I-FAM organisation.
    fn default() -> StuConfig {
        StuConfig {
            sets: 128,
            ways: 8,
            organization: StuOrganization::IFam,
            acm_width: AcmWidth::W16,
            pairs_per_way: None,
        }
    }
}

impl StuConfig {
    /// Total ways (`sets × ways`).
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// How many pages' ACM one DeACT-W way covers (§V-D2: 8 pages at
    /// 8-bit ACM, 4 at 16-bit, 2 at 32-bit).
    pub fn deact_w_coverage(&self) -> u64 {
        match self.acm_width {
            AcmWidth::W8 => 8,
            AcmWidth::W16 => 4,
            AcmWidth::W32 => 2,
        }
    }

    /// Tag/ACM pairs per DeACT-N way (§III-D and §V-D2): the 52+16
    /// bits of freed space fit two 44-bit-tag pairs at 8/16-bit ACM
    /// and one at 32-bit, unless overridden.
    pub fn deact_n_pairs(&self) -> usize {
        self.pairs_per_way.unwrap_or(match self.acm_width {
            AcmWidth::W8 | AcmWidth::W16 => 2,
            AcmWidth::W32 => 1,
        })
    }
}

/// The STU lookup structure, specialised by organisation.
///
/// For I-FAM the cache maps node pages to `(fam_page, )` translations
/// (ACM rides along in the same entry, so a translation hit is also an
/// ACM hit). For the DeACT organisations the cache holds ACM presence
/// keyed by FAM page — values are not stored because verification
/// always consults the broker's ACM ground truth; the cache models
/// which metadata the hardware would have resident.
#[derive(Debug, Clone)]
pub struct StuCache {
    config: StuConfig,
    /// I-FAM: npa_page → fam_page.
    translation: Option<SetAssocCache<u64>>,
    /// DeACT-W: fam_page_group → (), DeACT-N: fam_page → ().
    acm: Option<SetAssocCache<()>>,
    acm_stats: Ratio,
}

impl StuCache {
    /// Creates an empty STU cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways).
    pub fn new(config: StuConfig) -> StuCache {
        let (translation, acm) = match config.organization {
            StuOrganization::IFam => (
                Some(SetAssocCache::new(CacheConfig::new(
                    config.sets,
                    config.ways,
                    Replacement::Lru,
                ))),
                None,
            ),
            StuOrganization::DeactW => (
                None,
                Some(SetAssocCache::new(CacheConfig::new(
                    config.sets,
                    config.ways,
                    Replacement::Lru,
                ))),
            ),
            StuOrganization::DeactN => (
                None,
                Some(SetAssocCache::new(CacheConfig::new(
                    config.sets,
                    // Sub-ways behave like extra ways of the same set
                    // (§III-D: "matching the tags of sub-ways is
                    // similar to matching the tags of different ways").
                    config.ways * config.deact_n_pairs(),
                    Replacement::Lru,
                ))),
            ),
        };
        StuCache {
            config,
            translation,
            acm,
            acm_stats: Ratio::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> StuConfig {
        self.config
    }

    /// I-FAM: looks up the coupled translation entry for a node page.
    /// A hit also counts as an ACM hit (the entry carries both).
    ///
    /// # Panics
    ///
    /// Panics if called on a DeACT organisation.
    pub fn ifam_lookup(&mut self, npa_page: u64) -> Option<u64> {
        let cache = self
            .translation
            .as_mut()
            .expect("ifam_lookup requires the I-FAM organisation");
        let hit = cache.get(npa_page).copied();
        self.acm_stats.record(hit.is_some());
        hit
    }

    /// Side-effect-free twin of [`StuCache::ifam_lookup`]: would the
    /// coupled entry hit, without touching recency or the hit ratio?
    /// The sharded engine's admission scan uses this to predict a
    /// verify outcome it will only later commit to.
    ///
    /// # Panics
    ///
    /// Panics if called on a DeACT organisation.
    pub fn ifam_probe(&self, npa_page: u64) -> Option<u64> {
        self.translation
            .as_ref()
            .expect("ifam_probe requires the I-FAM organisation")
            .peek(npa_page)
            .copied()
    }

    /// I-FAM: installs a walked translation.
    ///
    /// # Panics
    ///
    /// Panics if called on a DeACT organisation.
    pub fn ifam_fill(&mut self, npa_page: u64, fam_page: u64) {
        self.translation
            .as_mut()
            .expect("ifam_fill requires the I-FAM organisation")
            .insert(npa_page, fam_page);
    }

    fn acm_key(&self, fam_page: u64) -> u64 {
        match self.config.organization {
            StuOrganization::IFam => {
                panic!("ACM-keyed access requires a DeACT organisation")
            }
            StuOrganization::DeactW => fam_page / self.config.deact_w_coverage(),
            StuOrganization::DeactN => fam_page,
        }
    }

    /// DeACT: is the ACM for `fam_page` resident?
    ///
    /// # Panics
    ///
    /// Panics if called on the I-FAM organisation.
    pub fn acm_lookup(&mut self, fam_page: u64) -> bool {
        let key = self.acm_key(fam_page);
        let hit = self
            .acm
            .as_mut()
            .expect("acm_lookup requires a DeACT organisation")
            .get(key)
            .is_some();
        self.acm_stats.record(hit);
        hit
    }

    /// Side-effect-free twin of [`StuCache::acm_lookup`]: would the
    /// ACM entry hit, without touching recency or the hit ratio?
    ///
    /// # Panics
    ///
    /// Panics if called on the I-FAM organisation.
    pub fn acm_probe(&self, fam_page: u64) -> bool {
        let key = self.acm_key(fam_page);
        self.acm
            .as_ref()
            .expect("acm_probe requires a DeACT organisation")
            .peek(key)
            .is_some()
    }

    /// DeACT: installs ACM after a metadata fetch. For DeACT-W this
    /// resident-izes the whole contiguous group the page belongs to.
    ///
    /// # Panics
    ///
    /// Panics if called on the I-FAM organisation.
    pub fn acm_fill(&mut self, fam_page: u64) {
        let key = self.acm_key(fam_page);
        self.acm
            .as_mut()
            .expect("acm_fill requires a DeACT organisation")
            .insert(key, ());
    }

    /// Invalidates everything related to `fam_page` (migration
    /// shootdown, §VI). For I-FAM, entries are keyed by node page, so
    /// the caller passes the node page instead.
    pub fn invalidate(&mut self, key_page: u64) {
        if let Some(c) = self.translation.as_mut() {
            c.invalidate(key_page);
        }
        if self.acm.is_some() {
            let key = self.acm_key(key_page);
            if let Some(c) = self.acm.as_mut() {
                c.invalidate(key);
            }
        }
    }

    /// Flushes the whole cache.
    pub fn flush(&mut self) {
        if let Some(c) = self.translation.as_mut() {
            c.clear();
        }
        if let Some(c) = self.acm.as_mut() {
            c.clear();
        }
    }

    /// ACM hit/miss statistics — the series plotted in Fig. 9. (For
    /// I-FAM this equals the translation hit rate, since the entry is
    /// coupled.)
    pub fn acm_stats(&self) -> Ratio {
        self.acm_stats
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.acm_stats.reset();
        if let Some(c) = self.translation.as_mut() {
            c.reset_stats();
        }
        if let Some(c) = self.acm.as_mut() {
            c.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(org: StuOrganization) -> StuConfig {
        StuConfig {
            organization: org,
            ..StuConfig::default()
        }
    }

    #[test]
    fn paper_geometry() {
        let c = StuConfig::default();
        assert_eq!(c.entries(), 1024);
        assert_eq!(c.sets, 128);
        assert_eq!(c.ways, 8);
    }

    #[test]
    fn ifam_couples_translation_and_acm() {
        let mut s = StuCache::new(cfg(StuOrganization::IFam));
        assert_eq!(s.ifam_lookup(42), None);
        s.ifam_fill(42, 777);
        assert_eq!(s.ifam_lookup(42), Some(777));
        assert_eq!(s.acm_stats().hits(), 1);
        assert_eq!(s.acm_stats().misses(), 1);
    }

    #[test]
    fn deact_w_covers_contiguous_groups() {
        let mut s = StuCache::new(cfg(StuOrganization::DeactW));
        s.acm_fill(100); // group 25 covers pages 100..104
        assert!(s.acm_lookup(100));
        assert!(s.acm_lookup(101));
        assert!(s.acm_lookup(103));
        assert!(!s.acm_lookup(104), "next group not resident");
        assert!(!s.acm_lookup(99));
    }

    #[test]
    fn deact_w_coverage_scales_with_width() {
        for (w, cov) in [(AcmWidth::W8, 8), (AcmWidth::W16, 4), (AcmWidth::W32, 2)] {
            let c = StuConfig {
                organization: StuOrganization::DeactW,
                acm_width: w,
                ..StuConfig::default()
            };
            assert_eq!(c.deact_w_coverage(), cov);
        }
    }

    #[test]
    fn deact_n_holds_arbitrary_pages() {
        let mut s = StuCache::new(cfg(StuOrganization::DeactN));
        s.acm_fill(100);
        s.acm_fill(1_000_003);
        assert!(s.acm_lookup(100));
        assert!(s.acm_lookup(1_000_003));
        assert!(!s.acm_lookup(101), "no contiguity assumption");
    }

    #[test]
    fn deact_n_doubles_effective_capacity() {
        // 1 set, 1 way: W holds one group; N holds 2 arbitrary pages.
        let base = StuConfig {
            sets: 1,
            ways: 1,
            ..StuConfig::default()
        };
        let mut w = StuCache::new(StuConfig {
            organization: StuOrganization::DeactW,
            ..base
        });
        let mut n = StuCache::new(StuConfig {
            organization: StuOrganization::DeactN,
            ..base
        });
        // Two far-apart pages: W thrashes, N keeps both.
        w.acm_fill(0);
        w.acm_fill(1000);
        assert!(!w.acm_lookup(0));
        n.acm_fill(0);
        n.acm_fill(1000);
        assert!(n.acm_lookup(0));
        assert!(n.acm_lookup(1000));
    }

    #[test]
    fn deact_n_pairs_follow_width() {
        for (w, pairs) in [(AcmWidth::W8, 2), (AcmWidth::W16, 2), (AcmWidth::W32, 1)] {
            let c = StuConfig {
                organization: StuOrganization::DeactN,
                acm_width: w,
                ..StuConfig::default()
            };
            assert_eq!(c.deact_n_pairs(), pairs);
        }
        let experimental = StuConfig {
            organization: StuOrganization::DeactN,
            acm_width: AcmWidth::W8,
            pairs_per_way: Some(3),
            ..StuConfig::default()
        };
        assert_eq!(experimental.deact_n_pairs(), 3);
    }

    #[test]
    fn invalidate_removes_entries() {
        let mut s = StuCache::new(cfg(StuOrganization::DeactN));
        s.acm_fill(5);
        s.invalidate(5);
        assert!(!s.acm_lookup(5));

        let mut i = StuCache::new(cfg(StuOrganization::IFam));
        i.ifam_fill(9, 1);
        i.invalidate(9);
        assert_eq!(i.ifam_lookup(9), None);
    }

    #[test]
    fn flush_and_reset_stats() {
        let mut s = StuCache::new(cfg(StuOrganization::DeactW));
        s.acm_fill(0);
        s.acm_lookup(0);
        s.flush();
        assert!(!s.acm_lookup(0));
        s.reset_stats();
        assert_eq!(s.acm_stats().total(), 0);
    }

    #[test]
    #[should_panic(expected = "requires the I-FAM organisation")]
    fn ifam_api_rejected_on_deact() {
        StuCache::new(cfg(StuOrganization::DeactW)).ifam_lookup(0);
    }

    #[test]
    #[should_panic(expected = "requires a DeACT organisation")]
    fn acm_api_rejected_on_ifam() {
        StuCache::new(cfg(StuOrganization::IFam)).acm_lookup(0);
    }
}
