//! Access-control metadata: the bit-level entry encoding and the
//! functional store the broker maintains in FAM.

use std::collections::HashMap;

use fam_sim::hash::FastHash;

use fam_vm::{NodeId, PtFlags};

/// The kind of access being vetted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An instruction fetch.
    Execute,
}

/// Width of a per-page ACM entry. The paper's default is 16 bits
/// (14-bit node id + 2 permission bits, Fig. 5); §V-D2 sweeps 8 and 32
/// bits, trading the number of supportable nodes against metadata
/// density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AcmWidth {
    /// 8-bit entries: 6-bit node id (8191 nodes in the paper's
    /// accounting), ACM of 64 pages per 64-byte block.
    W8,
    /// 16-bit entries: 14-bit node id (16383 nodes), 32 pages/block.
    #[default]
    W16,
    /// 32-bit entries: 30-bit node id, 16 pages/block.
    W32,
}

impl AcmWidth {
    /// Entry size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            AcmWidth::W8 => 1,
            AcmWidth::W16 => 2,
            AcmWidth::W32 => 4,
        }
    }

    /// Entry size in bits.
    pub fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// Bits of the entry that hold the node id (the rest hold
    /// permissions).
    pub fn node_bits(self) -> u32 {
        self.bits() - 2
    }

    /// The all-ones node-id pattern marking a shared page at this
    /// width.
    pub fn shared_marker(self) -> u32 {
        (1 << self.node_bits()) - 1
    }

    /// Highest assignable node id (one below the shared marker).
    pub fn max_nodes(self) -> u32 {
        self.shared_marker() - 1
    }
}

/// Two-bit permission encoding used in ACM entries. Three permissions
/// must fit in two bits (Fig. 5), so the encoding enumerates the four
/// useful combinations.
fn perms_encode(flags: PtFlags) -> u32 {
    match (flags.writable(), flags.executable()) {
        (false, false) => 0b00, // R
        (true, false) => 0b01,  // RW
        (false, true) => 0b10,  // RX
        (true, true) => 0b11,   // RWX
    }
}

fn perms_decode(bits: u32) -> PtFlags {
    match bits & 0b11 {
        0b00 => PtFlags::ro(),
        0b01 => PtFlags::rw(),
        0b10 => PtFlags::rx(),
        _ => PtFlags::rwx(),
    }
}

/// One page's access-control metadata entry: `[node-id bits | 2
/// permission bits]`.
///
/// # Examples
///
/// ```
/// use fam_broker::{AcmEntry, AcmWidth};
/// use fam_vm::{NodeId, PtFlags};
///
/// let e = AcmEntry::owned(AcmWidth::W16, NodeId::new(7), PtFlags::rw());
/// assert_eq!(e.owner(), Some(NodeId::new(7)));
/// assert!(!e.is_shared());
/// assert!(e.flags().writable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcmEntry {
    raw: u32,
    width: AcmWidth,
}

impl AcmEntry {
    /// An entry owned by `node` with the given permissions.
    ///
    /// # Panics
    ///
    /// Panics if the node id does not fit in the width's node field.
    pub fn owned(width: AcmWidth, node: NodeId, flags: PtFlags) -> AcmEntry {
        let id = node.raw() as u32;
        assert!(
            id < width.shared_marker(),
            "node id {id} does not fit in {}-bit ACM",
            width.bits()
        );
        AcmEntry {
            raw: (id << 2) | perms_encode(flags),
            width,
        }
    }

    /// A shared-page entry (node field all ones) with the default
    /// permissions granted to nodes not singled out in the bitmap.
    pub fn shared(width: AcmWidth, flags: PtFlags) -> AcmEntry {
        AcmEntry {
            raw: (width.shared_marker() << 2) | perms_encode(flags),
            width,
        }
    }

    /// Parses a raw entry value at a given width, masking off any bits
    /// beyond the entry.
    pub fn from_raw(width: AcmWidth, raw: u32) -> AcmEntry {
        let mask = if width.bits() == 32 {
            u32::MAX
        } else {
            (1u32 << width.bits()) - 1
        };
        AcmEntry {
            raw: raw & mask,
            width,
        }
    }

    /// The raw bit pattern.
    pub fn raw(self) -> u32 {
        self.raw
    }

    /// The entry width.
    pub fn width(self) -> AcmWidth {
        self.width
    }

    /// Whether the node field holds the shared marker.
    pub fn is_shared(self) -> bool {
        (self.raw >> 2) == self.width.shared_marker()
    }

    /// The owning node, or `None` for shared pages.
    pub fn owner(self) -> Option<NodeId> {
        if self.is_shared() {
            None
        } else {
            Some(NodeId::new((self.raw >> 2) as u16))
        }
    }

    /// The permission bits.
    pub fn flags(self) -> PtFlags {
        perms_decode(self.raw)
    }

    /// Whether `kind` is allowed under these permissions.
    pub fn permits(self, kind: AccessKind) -> bool {
        let f = self.flags();
        match kind {
            AccessKind::Read => f.readable(),
            AccessKind::Write => f.writable(),
            AccessKind::Execute => f.executable(),
        }
    }
}

/// Per-node permissions packed into a 1 GB region's sharing bitmap.
///
/// Fig. 5 gives each 1 GB region a 64 K-bit bitmap. With up to 16 K
/// nodes this affords 4 bits per node, which we spend as
/// `[allowed, read, write, execute]` so subsets of nodes can hold
/// *mixed* permissions on the same shared page (§III-A).
#[derive(Debug, Clone, Default)]
struct RegionBitmap {
    /// 4 bits per node, indexed by node id.
    nibbles: HashMap<u16, u8, FastHash>,
}

impl RegionBitmap {
    fn grant(&mut self, node: NodeId, flags: PtFlags) {
        let mut bits = 0b0001u8; // allowed
        if flags.readable() {
            bits |= 0b0010;
        }
        if flags.writable() {
            bits |= 0b0100;
        }
        if flags.executable() {
            bits |= 0b1000;
        }
        self.nibbles.insert(node.raw(), bits);
    }

    fn revoke(&mut self, node: NodeId) {
        self.nibbles.remove(&node.raw());
    }

    fn permits(&self, node: NodeId, kind: AccessKind) -> bool {
        let Some(&bits) = self.nibbles.get(&node.raw()) else {
            return false;
        };
        if bits & 0b0001 == 0 {
            return false;
        }
        match kind {
            AccessKind::Read => bits & 0b0010 != 0,
            AccessKind::Write => bits & 0b0100 != 0,
            AccessKind::Execute => bits & 0b1000 != 0,
        }
    }
}

/// The functional ACM store: what the broker has written into the FAM
/// metadata region. The STU consults this for ground truth; its own
/// cache organisations only affect *timing*.
///
/// # Examples
///
/// ```
/// use fam_broker::{AccessKind, AcmStore, AcmWidth};
/// use fam_vm::{NodeId, PtFlags};
///
/// let mut store = AcmStore::new(AcmWidth::W16);
/// store.set_owner(5, NodeId::new(1), PtFlags::rw());
/// assert!(store.check(5, 0, NodeId::new(1), AccessKind::Write));
/// assert!(!store.check(5, 0, NodeId::new(2), AccessKind::Read));
/// ```
#[derive(Debug, Clone)]
pub struct AcmStore {
    width: AcmWidth,
    entries: HashMap<u64, AcmEntry, FastHash>,
    bitmaps: HashMap<u64, RegionBitmap, FastHash>,
}

impl AcmStore {
    /// Creates an empty store at the given entry width.
    pub fn new(width: AcmWidth) -> AcmStore {
        AcmStore {
            width,
            entries: HashMap::default(),
            bitmaps: HashMap::default(),
        }
    }

    /// The entry width.
    pub fn width(&self) -> AcmWidth {
        self.width
    }

    /// Marks `fam_page` as owned by `node` with `flags`.
    pub fn set_owner(&mut self, fam_page: u64, node: NodeId, flags: PtFlags) {
        self.entries
            .insert(fam_page, AcmEntry::owned(self.width, node, flags));
    }

    /// Marks `fam_page` as shared with `default_flags` for bitmap-
    /// granted nodes; actual per-node rights come from the region
    /// bitmap (use [`AcmStore::grant_shared`]).
    pub fn set_shared(&mut self, fam_page: u64, default_flags: PtFlags) {
        self.entries
            .insert(fam_page, AcmEntry::shared(self.width, default_flags));
    }

    /// Grants `node` the given rights on every shared page in `region`.
    pub fn grant_shared(&mut self, region: u64, node: NodeId, flags: PtFlags) {
        self.bitmaps.entry(region).or_default().grant(node, flags);
    }

    /// Revokes `node`'s rights on shared pages in `region`.
    pub fn revoke_shared(&mut self, region: u64, node: NodeId) {
        if let Some(b) = self.bitmaps.get_mut(&region) {
            b.revoke(node);
        }
    }

    /// Clears a page's metadata entirely (page freed).
    pub fn clear(&mut self, fam_page: u64) {
        self.entries.remove(&fam_page);
    }

    /// The entry for `fam_page`, if the page is allocated.
    pub fn entry(&self, fam_page: u64) -> Option<AcmEntry> {
        self.entries.get(&fam_page).copied()
    }

    /// Vets an access by `node` of kind `kind` to `fam_page` in
    /// `region` — the STU's verification decision (§III-D): compare
    /// the owner id, or for shared pages consult the region bitmap.
    pub fn check(&self, fam_page: u64, region: u64, node: NodeId, kind: AccessKind) -> bool {
        let Some(entry) = self.entries.get(&fam_page) else {
            return false; // unallocated pages are inaccessible
        };
        if entry.is_shared() {
            match self.bitmaps.get(&region) {
                Some(bitmap) => bitmap.permits(node, kind),
                None => false,
            }
        } else {
            entry.owner() == Some(node) && entry.permits(kind)
        }
    }

    /// Number of pages with metadata.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no page has metadata.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bit_accounting_matches_paper() {
        // §V-D2: 16-bit -> 16383 nodes; 8-bit -> "8191 nodes" counts
        // the usable ids below a 6-bit marker differently, we expose
        // the field arithmetic directly.
        assert_eq!(AcmWidth::W16.node_bits(), 14);
        assert_eq!(AcmWidth::W16.shared_marker(), 0x3FFF);
        assert_eq!(AcmWidth::W16.max_nodes(), 16382);
        assert_eq!(AcmWidth::W8.node_bits(), 6);
        assert_eq!(AcmWidth::W32.node_bits(), 30);
    }

    #[test]
    fn owned_entry_roundtrip() {
        let e = AcmEntry::owned(AcmWidth::W16, NodeId::new(123), PtFlags::rx());
        assert_eq!(e.owner(), Some(NodeId::new(123)));
        assert!(e.permits(AccessKind::Read));
        assert!(e.permits(AccessKind::Execute));
        assert!(!e.permits(AccessKind::Write));
    }

    #[test]
    fn shared_entry_has_all_ones_node_field() {
        let e = AcmEntry::shared(AcmWidth::W16, PtFlags::ro());
        assert!(e.is_shared());
        assert_eq!(e.owner(), None);
        // Fig. 5 / §III-A: a shared R/X page's full field is 0xfffd;
        // our RW-encoding for a read-only shared page is 0xfffc.
        assert_eq!(e.raw(), 0xFFFC);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn narrow_width_rejects_large_node_id() {
        let _ = AcmEntry::owned(AcmWidth::W8, NodeId::new(100), PtFlags::ro());
    }

    #[test]
    fn store_owner_check() {
        let mut s = AcmStore::new(AcmWidth::W16);
        s.set_owner(10, NodeId::new(1), PtFlags::rw());
        assert!(s.check(10, 0, NodeId::new(1), AccessKind::Read));
        assert!(s.check(10, 0, NodeId::new(1), AccessKind::Write));
        assert!(!s.check(10, 0, NodeId::new(1), AccessKind::Execute));
        assert!(!s.check(10, 0, NodeId::new(2), AccessKind::Read));
    }

    #[test]
    fn unallocated_pages_are_denied() {
        let s = AcmStore::new(AcmWidth::W16);
        assert!(!s.check(99, 0, NodeId::new(0), AccessKind::Read));
    }

    #[test]
    fn shared_pages_use_region_bitmap() {
        let mut s = AcmStore::new(AcmWidth::W16);
        s.set_shared(10, PtFlags::ro());
        s.grant_shared(0, NodeId::new(1), PtFlags::rw());
        s.grant_shared(0, NodeId::new(2), PtFlags::ro());
        // Mixed permissions on the same shared page (§III-A).
        assert!(s.check(10, 0, NodeId::new(1), AccessKind::Write));
        assert!(s.check(10, 0, NodeId::new(2), AccessKind::Read));
        assert!(!s.check(10, 0, NodeId::new(2), AccessKind::Write));
        assert!(!s.check(10, 0, NodeId::new(3), AccessKind::Read));
    }

    #[test]
    fn revoke_removes_rights() {
        let mut s = AcmStore::new(AcmWidth::W16);
        s.set_shared(10, PtFlags::ro());
        s.grant_shared(0, NodeId::new(1), PtFlags::ro());
        assert!(s.check(10, 0, NodeId::new(1), AccessKind::Read));
        s.revoke_shared(0, NodeId::new(1));
        assert!(!s.check(10, 0, NodeId::new(1), AccessKind::Read));
    }

    #[test]
    fn clear_frees_page() {
        let mut s = AcmStore::new(AcmWidth::W16);
        s.set_owner(10, NodeId::new(1), PtFlags::rw());
        s.clear(10);
        assert!(!s.check(10, 0, NodeId::new(1), AccessKind::Read));
        assert!(s.is_empty());
    }

    #[test]
    fn bitmap_grant_is_per_region() {
        let mut s = AcmStore::new(AcmWidth::W16);
        s.set_shared(10, PtFlags::ro());
        s.set_shared(1_000_000, PtFlags::ro());
        s.grant_shared(0, NodeId::new(1), PtFlags::ro());
        assert!(s.check(10, 0, NodeId::new(1), AccessKind::Read));
        assert!(
            !s.check(1_000_000, 3, NodeId::new(1), AccessKind::Read),
            "grant in region 0 does not cover region 3"
        );
    }
}
