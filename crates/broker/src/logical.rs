//! Logical node identifiers for migratable jobs (§VI, "Page
//! Migration").
//!
//! The paper proposes assigning *logical* node ids to jobs, so that
//! migrating a job between physical nodes only requires re-pointing
//! the logical id — the ACM entries written with the logical id stay
//! valid, and only page-mapping invalidations remain.

use std::collections::HashMap;
use std::fmt;

use fam_vm::NodeId;

/// A resource-manager job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Maps jobs to the physical node currently running them, handing each
/// job a stable logical node id.
///
/// # Examples
///
/// ```
/// use fam_broker::{JobId, LogicalNodeMap};
/// use fam_vm::NodeId;
///
/// let mut map = LogicalNodeMap::new();
/// let logical = map.assign(JobId(1), NodeId::new(0));
/// map.migrate(JobId(1), NodeId::new(3)).unwrap();
/// assert_eq!(map.physical(logical), Some(NodeId::new(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogicalNodeMap {
    next_logical: u16,
    by_job: HashMap<JobId, NodeId>,
    physical: HashMap<u16, NodeId>,
    logical_of_job: HashMap<JobId, NodeId>,
}

impl LogicalNodeMap {
    /// Creates an empty map.
    pub fn new() -> LogicalNodeMap {
        LogicalNodeMap::default()
    }

    /// Assigns a fresh logical node id to `job`, initially resolving to
    /// `physical_node`. Returns the logical id.
    ///
    /// # Panics
    ///
    /// Panics if the 14-bit logical id space is exhausted.
    pub fn assign(&mut self, job: JobId, physical_node: NodeId) -> NodeId {
        let logical = NodeId::new(self.next_logical);
        self.next_logical += 1;
        self.by_job.insert(job, physical_node);
        self.physical.insert(logical.raw(), physical_node);
        self.logical_of_job.insert(job, logical);
        logical
    }

    /// Re-points `job`'s logical id at a new physical node — the whole
    /// migration cost at this layer (§VI).
    ///
    /// Returns the previous physical node, or `None` if the job is
    /// unknown.
    pub fn migrate(&mut self, job: JobId, new_physical: NodeId) -> Option<NodeId> {
        let logical = *self.logical_of_job.get(&job)?;
        let old = self.by_job.insert(job, new_physical)?;
        self.physical.insert(logical.raw(), new_physical);
        Some(old)
    }

    /// The logical id assigned to `job`.
    pub fn logical(&self, job: JobId) -> Option<NodeId> {
        self.logical_of_job.get(&job).copied()
    }

    /// Resolves a logical id to the physical node currently behind it.
    pub fn physical(&self, logical: NodeId) -> Option<NodeId> {
        self.physical.get(&logical.raw()).copied()
    }

    /// Removes a finished job, freeing nothing (logical ids are not
    /// recycled, matching resource-manager practice).
    pub fn retire(&mut self, job: JobId) -> Option<NodeId> {
        let logical = self.logical_of_job.remove(&job)?;
        self.by_job.remove(&job);
        self.physical.remove(&logical.raw())
    }

    /// Number of active jobs.
    pub fn len(&self) -> usize {
        self.by_job.len()
    }

    /// Whether no jobs are active.
    pub fn is_empty(&self) -> bool {
        self.by_job.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_resolves_to_physical() {
        let mut m = LogicalNodeMap::new();
        let l = m.assign(JobId(1), NodeId::new(5));
        assert_eq!(m.physical(l), Some(NodeId::new(5)));
        assert_eq!(m.logical(JobId(1)), Some(l));
    }

    #[test]
    fn logical_ids_are_distinct() {
        let mut m = LogicalNodeMap::new();
        let a = m.assign(JobId(1), NodeId::new(0));
        let b = m.assign(JobId(2), NodeId::new(0));
        assert_ne!(a, b);
    }

    #[test]
    fn migrate_repoints_logical_id() {
        let mut m = LogicalNodeMap::new();
        let l = m.assign(JobId(1), NodeId::new(0));
        let old = m.migrate(JobId(1), NodeId::new(7)).unwrap();
        assert_eq!(old, NodeId::new(0));
        assert_eq!(m.physical(l), Some(NodeId::new(7)));
    }

    #[test]
    fn migrate_unknown_job_is_none() {
        let mut m = LogicalNodeMap::new();
        assert_eq!(m.migrate(JobId(9), NodeId::new(0)), None);
    }

    #[test]
    fn retire_removes_resolution() {
        let mut m = LogicalNodeMap::new();
        let l = m.assign(JobId(1), NodeId::new(0));
        assert_eq!(m.retire(JobId(1)), Some(NodeId::new(0)));
        assert_eq!(m.physical(l), None);
        assert!(m.is_empty());
    }
}
