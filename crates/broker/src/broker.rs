//! The memory broker: system-level allocation and mapping.

use std::fmt;

use fam_sim::SimRng;
use fam_vm::{NodeId, PageTable, PtFlags, Pte, PAGE_BYTES};

use crate::layout::REGION_BYTES;
use crate::{AccessKind, AcmStore, AcmWidth, FamLayout, LogicalNodeMap};

/// Broker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// FAM module capacity in bytes (Table II: 16 GB).
    pub fam_bytes: u64,
    /// ACM entry width (paper default 16-bit; Fig. 14 sweeps 8/32).
    pub acm_width: AcmWidth,
    /// Maximum registerable nodes.
    pub max_nodes: usize,
    /// Seed for the randomised page allocator. The paper observes that
    /// "since FAM is shared by multiple nodes, memory allocation is
    /// random" (§III-D) — the allocator hands out pages of each region
    /// in shuffled order to reproduce that poor spatial locality.
    pub seed: u64,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            fam_bytes: 16 << 30,
            acm_width: AcmWidth::W16,
            max_nodes: 64,
            seed: 0xB20CE2,
        }
    }
}

/// Errors returned by broker operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerError {
    /// All node slots are taken.
    TooManyNodes,
    /// The FAM has no free pages left.
    OutOfMemory,
    /// The node id is not registered.
    UnknownNode(NodeId),
    /// No whole 1 GB region is left for a shared segment.
    RegionExhausted,
    /// A shared segment larger than one region was requested.
    SegmentTooLarge {
        /// Pages requested.
        requested: u64,
        /// Pages in one region.
        limit: u64,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::TooManyNodes => write!(f, "node limit reached"),
            BrokerError::OutOfMemory => write!(f, "fabric-attached memory exhausted"),
            BrokerError::UnknownNode(n) => write!(f, "unregistered node {n}"),
            BrokerError::RegionExhausted => write!(f, "no free 1 GB region for shared segment"),
            BrokerError::SegmentTooLarge { requested, limit } => {
                write!(
                    f,
                    "shared segment of {requested} pages exceeds region limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for BrokerError {}

/// A shared memory segment registered in a dedicated 1 GB region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedSegment {
    /// The 1 GB region hosting the segment.
    pub region: u64,
    /// First FAM page of the segment.
    pub first_page: u64,
    /// Number of pages.
    pub pages: u64,
}

impl SharedSegment {
    /// Iterates over the segment's FAM page numbers.
    pub fn fam_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.first_page..self.first_page + self.pages
    }
}

/// Accounting for a job migration (§VI): what a shootdown costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationReport {
    /// Pages whose ownership moved.
    pub pages_moved: u64,
    /// ACM entries rewritten in FAM.
    pub acm_writes: u64,
    /// System-level translations that must be invalidated (node-side
    /// FAM-translation-cache lines and STU entries).
    pub translation_invalidations: u64,
}

#[derive(Debug, Clone)]
struct NodeState {
    table: PageTable,
    /// `(npa_page, fam_page)` pairs installed by demand mapping.
    owned_pages: Vec<(u64, u64)>,
}

/// The centralized memory broker (Opal's role in the paper's SST
/// setup).
///
/// Owns the FAM: the randomised page pool, the per-node *system page
/// tables* (NPA→FAM; these are what the STU walks, and their interior
/// pages live in FAM), and the ACM store.
///
/// # Examples
///
/// ```
/// use fam_broker::{AccessKind, BrokerConfig, MemoryBroker};
///
/// let mut broker = MemoryBroker::new(BrokerConfig::default());
/// let a = broker.register_node().unwrap();
/// let b = broker.register_node().unwrap();
/// let page = broker.demand_map(a, 100).unwrap();
/// assert!(broker.check_access(a, page, AccessKind::Read));
/// assert!(!broker.check_access(b, page, AccessKind::Read));
/// ```
#[derive(Debug)]
pub struct MemoryBroker {
    config: BrokerConfig,
    layout: FamLayout,
    acm: AcmStore,
    /// Regions not yet handed to the page pool or a shared segment.
    /// The pool takes from the front; shared segments from the back.
    unassigned_regions: std::collections::VecDeque<u64>,
    /// Shuffled free pages of pool regions.
    free_pages: Vec<u64>,
    nodes: Vec<NodeState>,
    shared_segments: Vec<SharedSegment>,
    logical: LogicalNodeMap,
    rng: SimRng,
}

impl MemoryBroker {
    /// Creates a broker managing a fresh FAM module.
    pub fn new(config: BrokerConfig) -> MemoryBroker {
        let layout = FamLayout::new(config.fam_bytes, config.acm_width);
        let regions = layout.usable_bytes().div_ceil(REGION_BYTES);
        MemoryBroker {
            config,
            layout,
            acm: AcmStore::new(config.acm_width),
            unassigned_regions: (0..regions).collect(),
            free_pages: Vec::new(),
            nodes: Vec::new(),
            shared_segments: Vec::new(),
            logical: LogicalNodeMap::new(),
            rng: SimRng::seeded(config.seed),
        }
    }

    /// The FAM layout (for metadata address arithmetic).
    pub fn layout(&self) -> &FamLayout {
        &self.layout
    }

    /// The ACM store (ground truth the STU verifies against).
    pub fn acm(&self) -> &AcmStore {
        &self.acm
    }

    /// The logical-node-id map (§VI).
    pub fn logical_nodes(&mut self) -> &mut LogicalNodeMap {
        &mut self.logical
    }

    /// Registers a new compute node, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::TooManyNodes`] if the configured limit or
    /// the ACM width's node-id space is exhausted, and propagates
    /// allocation failure for the node's system-page-table root.
    pub fn register_node(&mut self) -> Result<NodeId, BrokerError> {
        let id = self.nodes.len();
        if id >= self.config.max_nodes || id as u32 > self.config.acm_width.max_nodes() {
            return Err(BrokerError::TooManyNodes);
        }
        let root_page = self.take_page()?;
        self.nodes.push(NodeState {
            table: PageTable::new(root_page * PAGE_BYTES),
            owned_pages: Vec::new(),
        });
        Ok(NodeId::new(id as u16))
    }

    fn node_mut(&mut self, node: NodeId) -> Result<&mut NodeState, BrokerError> {
        self.nodes
            .get_mut(node.index())
            .ok_or(BrokerError::UnknownNode(node))
    }

    fn node_ref(&self, node: NodeId) -> Result<&NodeState, BrokerError> {
        self.nodes
            .get(node.index())
            .ok_or(BrokerError::UnknownNode(node))
    }

    /// Pops one free page, refilling the pool from the next unassigned
    /// region (in shuffled order) when empty.
    fn take_page(&mut self) -> Result<u64, BrokerError> {
        if self.free_pages.is_empty() {
            let region = self
                .unassigned_regions
                .pop_front()
                .ok_or(BrokerError::OutOfMemory)?;
            let first = region * (REGION_BYTES / PAGE_BYTES);
            let last = ((region + 1) * (REGION_BYTES / PAGE_BYTES)).min(self.layout.usable_pages());
            self.free_pages.extend(first..last);
            // Fisher-Yates shuffle: random allocation order (§III-D).
            for i in (1..self.free_pages.len()).rev() {
                let j = self.rng.index(i + 1);
                self.free_pages.swap(i, j);
            }
        }
        self.free_pages.pop().ok_or(BrokerError::OutOfMemory)
    }

    /// Maps `npa_page` (a page in the node's FAM zone) to a freshly
    /// allocated FAM page, writing ownership ACM and installing the
    /// translation in the node's system page table. Idempotent: an
    /// already-mapped page returns its existing FAM page.
    ///
    /// This is the path taken when the STU faults on an unmapped node
    /// address and "requests physical pages from the system-level
    /// memory broker" (§II-C).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] or
    /// [`BrokerError::OutOfMemory`].
    pub fn demand_map(&mut self, node: NodeId, npa_page: u64) -> Result<u64, BrokerError> {
        if let Some(pte) = self.node_ref(node)?.table.translate(npa_page) {
            return Ok(pte.target_page);
        }
        let fam_page = self.take_page()?;
        // Pre-allocate pages for any interior table nodes the mapping
        // may need (at most LEVELS-1), then return the unused ones.
        let mut spare: Vec<u64> = Vec::with_capacity(3);
        for _ in 0..3 {
            spare.push(self.take_page()?);
        }
        let state = &mut self.nodes[node.index()];
        let mut alloc = |_level: usize| {
            spare
                .pop()
                .expect("three spare pages cover a 4-level mapping")
                * PAGE_BYTES
        };
        state
            .table
            .map(npa_page, fam_page, PtFlags::rw(), &mut alloc);
        state.owned_pages.push((npa_page, fam_page));
        self.free_pages.extend(spare);
        self.acm.set_owner(fam_page, node, PtFlags::rw());
        Ok(fam_page)
    }

    /// Looks up a node's system-level translation without faulting.
    pub fn translate(&self, node: NodeId, npa_page: u64) -> Option<Pte> {
        self.node_ref(node).ok()?.table.translate(npa_page)
    }

    /// The node's system page table — what the STU's FAM-PTW walks.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] for unregistered ids.
    pub fn system_table(&self, node: NodeId) -> Result<&PageTable, BrokerError> {
        Ok(&self.node_ref(node)?.table)
    }

    /// Vets an access: the STU's verification decision, delegated to
    /// the ACM ground truth.
    pub fn check_access(&self, node: NodeId, fam_page: u64, kind: AccessKind) -> bool {
        let region = fam_page * PAGE_BYTES / REGION_BYTES;
        self.acm.check(fam_page, region, node, kind)
    }

    /// Creates a shared segment of `pages` pages in a dedicated 1 GB
    /// region (shared pages are confined to 1 GB physical pages,
    /// §III-A), grants each member its flags in the region bitmap, and
    /// maps the segment into each member's system table starting at
    /// that member's `npa_start` page.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::SegmentTooLarge`],
    /// [`BrokerError::RegionExhausted`] or
    /// [`BrokerError::UnknownNode`].
    pub fn share_segment(
        &mut self,
        pages: u64,
        members: &[(NodeId, PtFlags, u64)],
    ) -> Result<SharedSegment, BrokerError> {
        let region_pages = REGION_BYTES / PAGE_BYTES;
        if pages > region_pages {
            return Err(BrokerError::SegmentTooLarge {
                requested: pages,
                limit: region_pages,
            });
        }
        for (node, _, _) in members {
            self.node_ref(*node)?;
        }
        let region = self
            .unassigned_regions
            .pop_back()
            .ok_or(BrokerError::RegionExhausted)?;
        let first_page = region * region_pages;
        let segment = SharedSegment {
            region,
            first_page,
            pages,
        };
        for fam_page in segment.fam_pages() {
            // All node-id bits set marks the page shared (§III-A); the
            // entry's own permission bits are the default for bitmap
            // members.
            self.acm.set_shared(fam_page, PtFlags::ro());
        }
        for &(node, flags, npa_start) in members {
            self.acm.grant_shared(region, node, flags);
            for (i, fam_page) in segment.fam_pages().enumerate() {
                let mut spare: Vec<u64> = Vec::with_capacity(3);
                for _ in 0..3 {
                    spare.push(self.take_page()?);
                }
                let state = &mut self.nodes[node.index()];
                let mut alloc = |_level: usize| {
                    spare.pop().expect("three spare pages cover a mapping") * PAGE_BYTES
                };
                state
                    .table
                    .map(npa_start + i as u64, fam_page, flags, &mut alloc);
                self.free_pages.extend(spare);
            }
        }
        self.shared_segments.push(segment.clone());
        Ok(segment)
    }

    /// Revokes `node`'s rights on the shared pages of `region` (the
    /// bitmap update a job teardown performs).
    pub fn revoke_shared(&mut self, region: u64, node: NodeId) {
        self.acm.revoke_shared(region, node);
    }

    /// Migrates every page owned by `from` to `to` (§VI): rewrites ACM
    /// ownership, moves the system-table mappings, and reports the
    /// shootdown work the caller must apply to node-side caches.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] for unregistered ids.
    pub fn migrate_node(
        &mut self,
        from: NodeId,
        to: NodeId,
    ) -> Result<MigrationReport, BrokerError> {
        self.node_ref(from)?;
        self.node_ref(to)?;
        let moved = std::mem::take(&mut self.nodes[from.index()].owned_pages);
        let mut report = MigrationReport::default();

        for &(npa_page, fam_page) in &moved {
            let pte = self.nodes[from.index()]
                .table
                .unmap(npa_page)
                .unwrap_or(Pte {
                    target_page: fam_page,
                    flags: PtFlags::rw(),
                });
            self.acm.set_owner(fam_page, to, PtFlags::rw());
            report.acm_writes += 1;
            let mut spare: Vec<u64> = Vec::with_capacity(3);
            for _ in 0..3 {
                spare.push(self.take_page()?);
            }
            let state = &mut self.nodes[to.index()];
            let mut alloc = |_level: usize| {
                spare.pop().expect("three spare pages cover a mapping") * PAGE_BYTES
            };
            state.table.map(npa_page, fam_page, pte.flags, &mut alloc);
            self.free_pages.extend(spare);
            report.translation_invalidations += 1;
        }
        self.nodes[to.index()].owned_pages.extend(&moved);
        report.pages_moved = moved.len() as u64;
        Ok(report)
    }

    /// Frees a previously demand-mapped page: clears ACM and removes
    /// the mapping. No-op if the page is not mapped by `node`.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] for unregistered ids.
    pub fn free_page(&mut self, node: NodeId, npa_page: u64) -> Result<(), BrokerError> {
        let state = self.node_mut(node)?;
        if let Some(pte) = state.table.unmap(npa_page) {
            state.owned_pages.retain(|&(n, _)| n != npa_page);
            self.acm.clear(pte.target_page);
            self.free_pages.push(pte.target_page);
        }
        Ok(())
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Pages currently owned (demand-mapped) by `node`.
    pub fn owned_pages(&self, node: NodeId) -> usize {
        self.node_ref(node)
            .map(|s| s.owned_pages.len())
            .unwrap_or(0)
    }

    /// Registered shared segments.
    pub fn shared_segments(&self) -> &[SharedSegment] {
        &self.shared_segments
    }

    /// The broker configuration.
    pub fn config(&self) -> BrokerConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fam_vm::FamAddr;

    fn small_broker() -> MemoryBroker {
        MemoryBroker::new(BrokerConfig {
            fam_bytes: 4 << 30,
            ..BrokerConfig::default()
        })
    }

    #[test]
    fn register_and_map() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let page = b.demand_map(n, 0x1000).unwrap();
        assert_eq!(b.translate(n, 0x1000).unwrap().target_page, page);
        assert_eq!(b.owned_pages(n), 1);
    }

    #[test]
    fn demand_map_is_idempotent() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let p1 = b.demand_map(n, 7).unwrap();
        let p2 = b.demand_map(n, 7).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(b.owned_pages(n), 1);
    }

    #[test]
    fn nodes_get_disjoint_pages() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let n2 = b.register_node().unwrap();
        let mut pages = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(pages.insert(b.demand_map(n1, i).unwrap()));
            assert!(pages.insert(b.demand_map(n2, i).unwrap()));
        }
    }

    #[test]
    fn allocation_order_is_randomised() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let pages: Vec<u64> = (0..64).map(|i| b.demand_map(n, i).unwrap()).collect();
        let sorted = {
            let mut s = pages.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(pages, sorted, "random allocation (§III-D)");
    }

    #[test]
    fn ownership_is_enforced() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let n2 = b.register_node().unwrap();
        let page = b.demand_map(n1, 0).unwrap();
        assert!(b.check_access(n1, page, AccessKind::Read));
        assert!(b.check_access(n1, page, AccessKind::Write));
        assert!(!b.check_access(n1, page, AccessKind::Execute));
        assert!(!b.check_access(n2, page, AccessKind::Read));
    }

    #[test]
    fn shared_segment_grants_mixed_permissions() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let n2 = b.register_node().unwrap();
        let n3 = b.register_node().unwrap();
        let seg = b
            .share_segment(
                16,
                &[(n1, PtFlags::rw(), 0x9000), (n2, PtFlags::ro(), 0xA000)],
            )
            .unwrap();
        let page = seg.first_page;
        assert!(b.check_access(n1, page, AccessKind::Write));
        assert!(b.check_access(n2, page, AccessKind::Read));
        assert!(!b.check_access(n2, page, AccessKind::Write));
        assert!(!b.check_access(n3, page, AccessKind::Read));
        // Mapped into both members' system tables at their NPAs.
        assert_eq!(b.translate(n1, 0x9000).unwrap().target_page, page);
        assert_eq!(b.translate(n2, 0xA000).unwrap().target_page, page);
    }

    #[test]
    fn shared_pages_marked_with_all_ones_node_field() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let seg = b.share_segment(1, &[(n1, PtFlags::ro(), 0)]).unwrap();
        let entry = b.acm().entry(seg.first_page).unwrap();
        assert!(entry.is_shared());
    }

    #[test]
    fn segment_too_large_rejected() {
        let mut b = small_broker();
        b.register_node().unwrap();
        let err = b.share_segment(1 << 30, &[]).unwrap_err();
        assert!(matches!(err, BrokerError::SegmentTooLarge { .. }));
    }

    #[test]
    fn free_page_returns_memory_and_clears_acm() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let page = b.demand_map(n, 0).unwrap();
        b.free_page(n, 0).unwrap();
        assert!(!b.check_access(n, page, AccessKind::Read));
        assert_eq!(b.owned_pages(n), 0);
        assert_eq!(b.translate(n, 0), None);
    }

    #[test]
    fn migration_moves_ownership_and_mappings() {
        let mut b = small_broker();
        let from = b.register_node().unwrap();
        let to = b.register_node().unwrap();
        let p0 = b.demand_map(from, 10).unwrap();
        let p1 = b.demand_map(from, 11).unwrap();
        let report = b.migrate_node(from, to).unwrap();
        assert_eq!(report.pages_moved, 2);
        assert_eq!(report.acm_writes, 2);
        assert_eq!(report.translation_invalidations, 2);
        assert!(b.check_access(to, p0, AccessKind::Read));
        assert!(!b.check_access(from, p1, AccessKind::Read));
        assert_eq!(b.translate(to, 10).unwrap().target_page, p0);
        assert_eq!(b.translate(from, 10), None);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let mut b = small_broker();
        let err = b.demand_map(NodeId::new(9), 0).unwrap_err();
        assert_eq!(err, BrokerError::UnknownNode(NodeId::new(9)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut b = MemoryBroker::new(BrokerConfig {
            fam_bytes: 16 << 20, // 16 MB: ~4K usable pages
            ..BrokerConfig::default()
        });
        let n = b.register_node().unwrap();
        let mut npa = 0u64;
        let err = loop {
            match b.demand_map(n, npa) {
                Ok(_) => npa += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, BrokerError::OutOfMemory);
        assert!(npa > 1000, "most pages were allocatable first");
    }

    #[test]
    fn node_limit_enforced() {
        let mut b = MemoryBroker::new(BrokerConfig {
            max_nodes: 1,
            ..BrokerConfig::default()
        });
        b.register_node().unwrap();
        assert_eq!(b.register_node().unwrap_err(), BrokerError::TooManyNodes);
    }

    #[test]
    fn system_table_walkable_by_stu() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let page = b.demand_map(n, 42).unwrap();
        let table = b.system_table(n).unwrap();
        let walk = table.walk(42);
        assert_eq!(walk.mapping.unwrap().target_page, page);
        assert_eq!(walk.steps.len(), 4, "4-level system page table");
        // Interior pages live in FAM's usable region.
        for step in &walk.steps {
            assert!(b.layout().is_usable(FamAddr(step.entry_addr)));
        }
    }
}
