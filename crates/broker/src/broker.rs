//! The memory broker: system-level allocation and mapping.

use std::fmt;

use fam_sim::SimRng;
use fam_vm::{NodeId, PageTable, PtFlags, Pte, PAGE_BYTES};

use crate::layout::{Quarantine, REGION_BYTES};
use crate::{AccessKind, AcmStore, AcmWidth, FamLayout, LogicalNodeMap};

/// Broker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// FAM module capacity in bytes (Table II: 16 GB).
    pub fam_bytes: u64,
    /// ACM entry width (paper default 16-bit; Fig. 14 sweeps 8/32).
    pub acm_width: AcmWidth,
    /// Maximum registerable nodes.
    pub max_nodes: usize,
    /// Seed for the randomised page allocator. The paper observes that
    /// "since FAM is shared by multiple nodes, memory allocation is
    /// random" (§III-D) — the allocator hands out pages of each region
    /// in shuffled order to reproduce that poor spatial locality.
    pub seed: u64,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            fam_bytes: 16 << 30,
            acm_width: AcmWidth::W16,
            max_nodes: 64,
            seed: 0xB20CE2,
        }
    }
}

/// Errors returned by broker operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerError {
    /// All node slots are taken.
    TooManyNodes,
    /// The FAM has no free pages left.
    OutOfMemory,
    /// The node id is not registered.
    UnknownNode(NodeId),
    /// No whole 1 GB region is left for a shared segment.
    RegionExhausted,
    /// A shared segment larger than one region was requested.
    SegmentTooLarge {
        /// Pages requested.
        requested: u64,
        /// Pages in one region.
        limit: u64,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::TooManyNodes => write!(f, "node limit reached"),
            BrokerError::OutOfMemory => write!(f, "fabric-attached memory exhausted"),
            BrokerError::UnknownNode(n) => write!(f, "unregistered node {n}"),
            BrokerError::RegionExhausted => write!(f, "no free 1 GB region for shared segment"),
            BrokerError::SegmentTooLarge { requested, limit } => {
                write!(
                    f,
                    "shared segment of {requested} pages exceeds region limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for BrokerError {}

/// A shared memory segment registered in a dedicated 1 GB region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedSegment {
    /// The 1 GB region hosting the segment.
    pub region: u64,
    /// First FAM page of the segment.
    pub first_page: u64,
    /// Number of pages.
    pub pages: u64,
    /// The members the segment is mapped into: `(node, flags,
    /// npa_start)`. Migration and evacuation need this to find and
    /// rewrite every member's system-table mappings.
    pub members: Vec<(NodeId, PtFlags, u64)>,
}

impl SharedSegment {
    /// Iterates over the segment's FAM page numbers.
    pub fn fam_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.first_page..self.first_page + self.pages
    }
}

/// Accounting for a job migration (§VI): what a shootdown costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationReport {
    /// Pages whose ownership moved.
    pub pages_moved: u64,
    /// Shared-segment pages whose membership moved with the node
    /// (counted once per segment membership transferred).
    pub shared_pages_moved: u64,
    /// ACM entries rewritten in FAM.
    pub acm_writes: u64,
    /// System-level translations that must be invalidated (node-side
    /// FAM-translation-cache lines and STU entries).
    pub translation_invalidations: u64,
}

/// One page's fate during a permanent-failure evacuation: the
/// shootdown worklist entry the system applies to node-side caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRelocation {
    /// The node whose system-table mapping was rewritten.
    pub node: NodeId,
    /// The node-physical page that mapped to the failed FAM page.
    pub npa_page: u64,
    /// The quarantined FAM page the mapping used to name.
    pub old_fam_page: u64,
    /// Where the data lives now — `None` means the data is lost and
    /// the mapping was removed (a later access takes a fresh demand
    /// fault, or surfaces as data loss to whoever needed the bytes).
    pub new_fam_page: Option<u64>,
}

/// What broker-led permanent-failure recovery accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvacuationReport {
    /// Data pages copied to surviving FAM and remapped.
    pub pages_evacuated: u64,
    /// Data pages destroyed with the failed hardware.
    pub pages_lost: u64,
    /// System-page-table interior pages rebuilt on surviving FAM (the
    /// broker authored every entry, so tables are always rebuildable).
    pub table_pages_rebuilt: u64,
    /// ACM entries rewritten.
    pub acm_writes: u64,
    /// Bytes copied over the management path (drives the simulated
    /// evacuation-bandwidth cost).
    pub bytes_copied: u64,
    /// Usable capacity the quarantine removed from service, in pages.
    pub capacity_pages_lost: u64,
}

#[derive(Debug, Clone)]
struct NodeState {
    table: PageTable,
    /// `(npa_page, fam_page)` pairs installed by demand mapping.
    owned_pages: Vec<(u64, u64)>,
}

/// The centralized memory broker (Opal's role in the paper's SST
/// setup).
///
/// Owns the FAM: the randomised page pool, the per-node *system page
/// tables* (NPA→FAM; these are what the STU walks, and their interior
/// pages live in FAM), and the ACM store.
///
/// # Examples
///
/// ```
/// use fam_broker::{AccessKind, BrokerConfig, MemoryBroker};
///
/// let mut broker = MemoryBroker::new(BrokerConfig::default());
/// let a = broker.register_node().unwrap();
/// let b = broker.register_node().unwrap();
/// let page = broker.demand_map(a, 100).unwrap();
/// assert!(broker.check_access(a, page, AccessKind::Read));
/// assert!(!broker.check_access(b, page, AccessKind::Read));
/// ```
#[derive(Debug)]
pub struct MemoryBroker {
    config: BrokerConfig,
    layout: FamLayout,
    acm: AcmStore,
    /// Regions not yet handed to the page pool or a shared segment.
    /// The pool takes from the front; shared segments from the back.
    unassigned_regions: std::collections::VecDeque<u64>,
    /// Shuffled free pages of pool regions.
    free_pages: Vec<u64>,
    nodes: Vec<NodeState>,
    shared_segments: Vec<SharedSegment>,
    logical: LogicalNodeMap,
    rng: SimRng,
}

impl MemoryBroker {
    /// Creates a broker managing a fresh FAM module.
    pub fn new(config: BrokerConfig) -> MemoryBroker {
        let layout = FamLayout::new(config.fam_bytes, config.acm_width);
        let regions = layout.usable_bytes().div_ceil(REGION_BYTES);
        MemoryBroker {
            config,
            layout,
            acm: AcmStore::new(config.acm_width),
            unassigned_regions: (0..regions).collect(),
            free_pages: Vec::new(),
            nodes: Vec::new(),
            shared_segments: Vec::new(),
            logical: LogicalNodeMap::new(),
            rng: SimRng::seeded(config.seed),
        }
    }

    /// The FAM layout (for metadata address arithmetic).
    pub fn layout(&self) -> &FamLayout {
        &self.layout
    }

    /// The ACM store (ground truth the STU verifies against).
    pub fn acm(&self) -> &AcmStore {
        &self.acm
    }

    /// The logical-node-id map (§VI).
    pub fn logical_nodes(&mut self) -> &mut LogicalNodeMap {
        &mut self.logical
    }

    /// Registers a new compute node, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::TooManyNodes`] if the configured limit or
    /// the ACM width's node-id space is exhausted, and propagates
    /// allocation failure for the node's system-page-table root.
    pub fn register_node(&mut self) -> Result<NodeId, BrokerError> {
        let id = self.nodes.len();
        if id >= self.config.max_nodes || id as u32 > self.config.acm_width.max_nodes() {
            return Err(BrokerError::TooManyNodes);
        }
        let root_page = self.take_page()?;
        self.nodes.push(NodeState {
            table: PageTable::new(root_page * PAGE_BYTES),
            owned_pages: Vec::new(),
        });
        Ok(NodeId::new(id as u16))
    }

    fn node_mut(&mut self, node: NodeId) -> Result<&mut NodeState, BrokerError> {
        self.nodes
            .get_mut(node.index())
            .ok_or(BrokerError::UnknownNode(node))
    }

    fn node_ref(&self, node: NodeId) -> Result<&NodeState, BrokerError> {
        self.nodes
            .get(node.index())
            .ok_or(BrokerError::UnknownNode(node))
    }

    /// Pops one free page, refilling the pool from the next unassigned
    /// region (in shuffled order) when empty.
    fn take_page(&mut self) -> Result<u64, BrokerError> {
        if self.free_pages.is_empty() {
            let region = self
                .unassigned_regions
                .pop_front()
                .ok_or(BrokerError::OutOfMemory)?;
            let first = region * (REGION_BYTES / PAGE_BYTES);
            let last = ((region + 1) * (REGION_BYTES / PAGE_BYTES)).min(self.layout.usable_pages());
            let quarantine = self.layout.quarantine();
            self.free_pages
                .extend((first..last).filter(|&p| !quarantine.contains(p)));
            // Fisher-Yates shuffle: random allocation order (§III-D).
            for i in (1..self.free_pages.len()).rev() {
                let j = self.rng.index(i + 1);
                self.free_pages.swap(i, j);
            }
        }
        self.free_pages.pop().ok_or(BrokerError::OutOfMemory)
    }

    /// Maps `npa_page` (a page in the node's FAM zone) to a freshly
    /// allocated FAM page, writing ownership ACM and installing the
    /// translation in the node's system page table. Idempotent: an
    /// already-mapped page returns its existing FAM page.
    ///
    /// This is the path taken when the STU faults on an unmapped node
    /// address and "requests physical pages from the system-level
    /// memory broker" (§II-C).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] or
    /// [`BrokerError::OutOfMemory`].
    pub fn demand_map(&mut self, node: NodeId, npa_page: u64) -> Result<u64, BrokerError> {
        if let Some(pte) = self.node_ref(node)?.table.translate(npa_page) {
            return Ok(pte.target_page);
        }
        let fam_page = self.take_page()?;
        // Pre-allocate pages for any interior table nodes the mapping
        // may need (at most LEVELS-1), then return the unused ones.
        let mut spare: Vec<u64> = Vec::with_capacity(3);
        for _ in 0..3 {
            spare.push(self.take_page()?);
        }
        let state = &mut self.nodes[node.index()];
        let mut alloc = |_level: usize| {
            spare
                .pop()
                .expect("three spare pages cover a 4-level mapping")
                * PAGE_BYTES
        };
        state
            .table
            .map(npa_page, fam_page, PtFlags::rw(), &mut alloc);
        state.owned_pages.push((npa_page, fam_page));
        self.free_pages.extend(spare);
        self.acm.set_owner(fam_page, node, PtFlags::rw());
        Ok(fam_page)
    }

    /// Looks up a node's system-level translation without faulting.
    pub fn translate(&self, node: NodeId, npa_page: u64) -> Option<Pte> {
        self.node_ref(node).ok()?.table.translate(npa_page)
    }

    /// The node's system page table — what the STU's FAM-PTW walks.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] for unregistered ids.
    pub fn system_table(&self, node: NodeId) -> Result<&PageTable, BrokerError> {
        Ok(&self.node_ref(node)?.table)
    }

    /// Vets an access: the STU's verification decision, delegated to
    /// the ACM ground truth.
    pub fn check_access(&self, node: NodeId, fam_page: u64, kind: AccessKind) -> bool {
        let region = fam_page * PAGE_BYTES / REGION_BYTES;
        self.acm.check(fam_page, region, node, kind)
    }

    /// Creates a shared segment of `pages` pages in a dedicated 1 GB
    /// region (shared pages are confined to 1 GB physical pages,
    /// §III-A), grants each member its flags in the region bitmap, and
    /// maps the segment into each member's system table starting at
    /// that member's `npa_start` page.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::SegmentTooLarge`],
    /// [`BrokerError::RegionExhausted`] or
    /// [`BrokerError::UnknownNode`].
    pub fn share_segment(
        &mut self,
        pages: u64,
        members: &[(NodeId, PtFlags, u64)],
    ) -> Result<SharedSegment, BrokerError> {
        let region_pages = REGION_BYTES / PAGE_BYTES;
        if pages > region_pages {
            return Err(BrokerError::SegmentTooLarge {
                requested: pages,
                limit: region_pages,
            });
        }
        for (node, _, _) in members {
            self.node_ref(*node)?;
        }
        let region = self
            .unassigned_regions
            .pop_back()
            .ok_or(BrokerError::RegionExhausted)?;
        let first_page = region * region_pages;
        let segment = SharedSegment {
            region,
            first_page,
            pages,
            members: members.to_vec(),
        };
        for fam_page in segment.fam_pages() {
            // All node-id bits set marks the page shared (§III-A); the
            // entry's own permission bits are the default for bitmap
            // members.
            self.acm.set_shared(fam_page, PtFlags::ro());
        }
        for &(node, flags, npa_start) in members {
            self.acm.grant_shared(region, node, flags);
            for (i, fam_page) in segment.fam_pages().enumerate() {
                let mut spare: Vec<u64> = Vec::with_capacity(3);
                for _ in 0..3 {
                    spare.push(self.take_page()?);
                }
                let state = &mut self.nodes[node.index()];
                let mut alloc = |_level: usize| {
                    spare.pop().expect("three spare pages cover a mapping") * PAGE_BYTES
                };
                state
                    .table
                    .map(npa_start + i as u64, fam_page, flags, &mut alloc);
                self.free_pages.extend(spare);
            }
        }
        self.shared_segments.push(segment.clone());
        Ok(segment)
    }

    /// Revokes `node`'s rights on the shared pages of `region` (the
    /// bitmap update a job teardown performs).
    pub fn revoke_shared(&mut self, region: u64, node: NodeId) {
        self.acm.revoke_shared(region, node);
    }

    /// Migrates every page owned by `from` to `to` (§VI): rewrites ACM
    /// ownership, moves the system-table mappings — including the
    /// node's *shared-segment* memberships, whose pages are not in
    /// `owned_pages` and used to be silently left behind — and reports
    /// the shootdown work the caller must apply to node-side caches.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] for unregistered ids.
    pub fn migrate_node(
        &mut self,
        from: NodeId,
        to: NodeId,
    ) -> Result<MigrationReport, BrokerError> {
        self.node_ref(from)?;
        self.node_ref(to)?;
        let moved = std::mem::take(&mut self.nodes[from.index()].owned_pages);
        let mut report = MigrationReport::default();

        for &(npa_page, fam_page) in &moved {
            let pte = self.nodes[from.index()]
                .table
                .unmap(npa_page)
                .unwrap_or(Pte {
                    target_page: fam_page,
                    flags: PtFlags::rw(),
                });
            self.acm.set_owner(fam_page, to, PtFlags::rw());
            report.acm_writes += 1;
            let mut spare: Vec<u64> = Vec::with_capacity(3);
            for _ in 0..3 {
                spare.push(self.take_page()?);
            }
            let state = &mut self.nodes[to.index()];
            let mut alloc = |_level: usize| {
                spare.pop().expect("three spare pages cover a mapping") * PAGE_BYTES
            };
            state.table.map(npa_page, fam_page, pte.flags, &mut alloc);
            self.free_pages.extend(spare);
            report.translation_invalidations += 1;
        }
        self.nodes[to.index()].owned_pages.extend(&moved);
        report.pages_moved = moved.len() as u64;

        // Shared-segment memberships travel with the job: revoke the
        // old node's bitmap grant, grant the new one, and rewrite the
        // member's system-table mappings under the same NPAs.
        for seg_idx in 0..self.shared_segments.len() {
            let segment = self.shared_segments[seg_idx].clone();
            for (m, &(member, flags, npa_start)) in segment.members.iter().enumerate() {
                if member != from {
                    continue;
                }
                self.acm.revoke_shared(segment.region, from);
                self.acm.grant_shared(segment.region, to, flags);
                report.acm_writes += 1;
                for (i, fam_page) in segment.fam_pages().enumerate() {
                    let npa_page = npa_start + i as u64;
                    self.nodes[from.index()].table.unmap(npa_page);
                    let mut spare: Vec<u64> = Vec::with_capacity(3);
                    for _ in 0..3 {
                        spare.push(self.take_page()?);
                    }
                    let state = &mut self.nodes[to.index()];
                    let mut alloc = |_level: usize| {
                        spare.pop().expect("three spare pages cover a mapping") * PAGE_BYTES
                    };
                    state.table.map(npa_page, fam_page, flags, &mut alloc);
                    self.free_pages.extend(spare);
                    report.translation_invalidations += 1;
                }
                report.shared_pages_moved += segment.pages;
                self.shared_segments[seg_idx].members[m] = (to, flags, npa_start);
            }
        }
        Ok(report)
    }

    /// Quarantines the FAM pages a permanent failure took out and
    /// rewrites every mapping that named them — the broker half of the
    /// permanent-failure recovery protocol.
    ///
    /// * The free pool and future region refills shed quarantined
    ///   pages, so nothing doomed is ever handed out again.
    /// * Data pages still reachable over the management path
    ///   (`evacuable`, i.e. a severed data link) are copied to
    ///   surviving FAM and their system-table mappings rewritten in
    ///   place; unreachable pages (dead node, failed media) are lost —
    ///   their mappings are removed and their ACM entries cleared, so
    ///   a later touch takes a fresh demand fault.
    /// * System-page-table pages on failed media are rebuilt on
    ///   surviving FAM regardless of `evacuable`: the broker authored
    ///   every entry, so tables are always reconstructible.
    ///
    /// Returns the accounting plus the shootdown worklist — one
    /// [`PageRelocation`] per rewritten or removed mapping — which the
    /// caller must apply to node-side caches (TLBs, STU, PTW caches)
    /// before any core may observe the new state. Evacuation that runs
    /// out of surviving capacity degrades page-by-page into loss
    /// rather than failing the protocol.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (capacity exhaustion degrades
    /// to loss); the `Result` reserves room for future broker errors.
    pub fn quarantine_and_evacuate(
        &mut self,
        quarantine: Quarantine,
        evacuable: bool,
    ) -> Result<(EvacuationReport, Vec<PageRelocation>), BrokerError> {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Evacuation);
        self.layout.set_quarantine(quarantine);
        let mut report = EvacuationReport {
            capacity_pages_lost: self.layout.quarantined_pages(),
            ..EvacuationReport::default()
        };
        let mut relocations = Vec::new();

        self.free_pages.retain(|&p| !quarantine.contains(p));

        // Owned data pages.
        for node_idx in 0..self.nodes.len() {
            let node = NodeId::new(node_idx as u16);
            let doomed: Vec<(u64, u64)> = self.nodes[node_idx]
                .owned_pages
                .iter()
                .copied()
                .filter(|&(_, fam)| quarantine.contains(fam))
                .collect();
            for (npa_page, old_fam) in doomed {
                let replacement = if evacuable {
                    self.take_page().ok()
                } else {
                    None
                };
                let state = &mut self.nodes[node_idx];
                match replacement {
                    Some(new_fam) => {
                        let flags = state
                            .table
                            .translate(npa_page)
                            .map(|pte| pte.flags)
                            .unwrap_or_else(PtFlags::rw);
                        let mut alloc = |_level: usize| -> u64 {
                            unreachable!("remapping an existing leaf allocates nothing")
                        };
                        state.table.map(npa_page, new_fam, flags, &mut alloc);
                        for pair in &mut state.owned_pages {
                            if *pair == (npa_page, old_fam) {
                                pair.1 = new_fam;
                            }
                        }
                        self.acm.clear(old_fam);
                        self.acm.set_owner(new_fam, node, flags);
                        report.acm_writes += 2;
                        report.pages_evacuated += 1;
                        report.bytes_copied += PAGE_BYTES;
                        relocations.push(PageRelocation {
                            node,
                            npa_page,
                            old_fam_page: old_fam,
                            new_fam_page: Some(new_fam),
                        });
                    }
                    None => {
                        state.table.unmap(npa_page);
                        state.owned_pages.retain(|&p| p != (npa_page, old_fam));
                        self.acm.clear(old_fam);
                        report.acm_writes += 1;
                        report.pages_lost += 1;
                        relocations.push(PageRelocation {
                            node,
                            npa_page,
                            old_fam_page: old_fam,
                            new_fam_page: None,
                        });
                    }
                }
            }
        }

        // Shared-segment pages: one data fate per page, one mapping
        // rewrite per member.
        for seg_idx in 0..self.shared_segments.len() {
            let segment = self.shared_segments[seg_idx].clone();
            for (i, old_fam) in segment.fam_pages().enumerate() {
                if !quarantine.contains(old_fam) {
                    continue;
                }
                let replacement = if evacuable {
                    self.take_page().ok()
                } else {
                    None
                };
                match replacement {
                    Some(new_fam) => {
                        self.acm.set_shared(new_fam, PtFlags::ro());
                        report.acm_writes += 1;
                        report.pages_evacuated += 1;
                        report.bytes_copied += PAGE_BYTES;
                        let new_region = new_fam * PAGE_BYTES / REGION_BYTES;
                        for &(member, flags, npa_start) in &segment.members {
                            self.acm.grant_shared(new_region, member, flags);
                            report.acm_writes += 1;
                            let npa_page = npa_start + i as u64;
                            let state = &mut self.nodes[member.index()];
                            let mut alloc = |_level: usize| -> u64 {
                                unreachable!("remapping an existing leaf allocates nothing")
                            };
                            state.table.map(npa_page, new_fam, flags, &mut alloc);
                            relocations.push(PageRelocation {
                                node: member,
                                npa_page,
                                old_fam_page: old_fam,
                                new_fam_page: Some(new_fam),
                            });
                        }
                    }
                    None => {
                        self.acm.clear(old_fam);
                        report.acm_writes += 1;
                        report.pages_lost += 1;
                        for &(member, _, npa_start) in &segment.members {
                            let npa_page = npa_start + i as u64;
                            self.nodes[member.index()].table.unmap(npa_page);
                            relocations.push(PageRelocation {
                                node: member,
                                npa_page,
                                old_fam_page: old_fam,
                                new_fam_page: None,
                            });
                        }
                    }
                }
            }
        }

        // Table pages: always rebuildable, relocated in place so every
        // later walk reads surviving addresses.
        for node_idx in 0..self.nodes.len() {
            let doomed: Vec<u64> = self.nodes[node_idx]
                .table
                .table_page_addrs()
                .filter(|&addr| quarantine.contains(addr / PAGE_BYTES))
                .collect();
            for old_base in doomed {
                // Capacity exhaustion here would leave the table
                // unreadable; in practice table pages are a tiny
                // fraction of the pool, and the refill filter already
                // excludes quarantined pages.
                let new_page = self.take_page()?;
                self.nodes[node_idx]
                    .table
                    .relocate_table_page(old_base, new_page * PAGE_BYTES);
                report.table_pages_rebuilt += 1;
                report.bytes_copied += PAGE_BYTES;
                // Announce the rebuild as a relocation too, so in-flight
                // walks that already read the old address can redirect
                // instead of surfacing rebuildable metadata as loss.
                // The sentinel NPA can never collide with a real
                // mapping, so shootdowns keyed on NPAs ignore it.
                relocations.push(PageRelocation {
                    node: NodeId::new(node_idx as u16),
                    npa_page: u64::MAX,
                    old_fam_page: old_base / PAGE_BYTES,
                    new_fam_page: Some(new_page),
                });
            }
        }

        Ok((report, relocations))
    }

    /// Frees a previously demand-mapped page: clears ACM and removes
    /// the mapping. No-op if the page is not mapped by `node`.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] for unregistered ids.
    pub fn free_page(&mut self, node: NodeId, npa_page: u64) -> Result<(), BrokerError> {
        let state = self.node_mut(node)?;
        if let Some(pte) = state.table.unmap(npa_page) {
            state.owned_pages.retain(|&(n, _)| n != npa_page);
            self.acm.clear(pte.target_page);
            self.free_pages.push(pte.target_page);
        }
        Ok(())
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Pages currently owned (demand-mapped) by `node`.
    pub fn owned_pages(&self, node: NodeId) -> usize {
        self.node_ref(node)
            .map(|s| s.owned_pages.len())
            .unwrap_or(0)
    }

    /// Registered shared segments.
    pub fn shared_segments(&self) -> &[SharedSegment] {
        &self.shared_segments
    }

    /// The broker configuration.
    pub fn config(&self) -> BrokerConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fam_vm::FamAddr;

    fn small_broker() -> MemoryBroker {
        MemoryBroker::new(BrokerConfig {
            fam_bytes: 4 << 30,
            ..BrokerConfig::default()
        })
    }

    #[test]
    fn register_and_map() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let page = b.demand_map(n, 0x1000).unwrap();
        assert_eq!(b.translate(n, 0x1000).unwrap().target_page, page);
        assert_eq!(b.owned_pages(n), 1);
    }

    #[test]
    fn demand_map_is_idempotent() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let p1 = b.demand_map(n, 7).unwrap();
        let p2 = b.demand_map(n, 7).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(b.owned_pages(n), 1);
    }

    #[test]
    fn nodes_get_disjoint_pages() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let n2 = b.register_node().unwrap();
        let mut pages = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(pages.insert(b.demand_map(n1, i).unwrap()));
            assert!(pages.insert(b.demand_map(n2, i).unwrap()));
        }
    }

    #[test]
    fn allocation_order_is_randomised() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let pages: Vec<u64> = (0..64).map(|i| b.demand_map(n, i).unwrap()).collect();
        let sorted = {
            let mut s = pages.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(pages, sorted, "random allocation (§III-D)");
    }

    #[test]
    fn ownership_is_enforced() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let n2 = b.register_node().unwrap();
        let page = b.demand_map(n1, 0).unwrap();
        assert!(b.check_access(n1, page, AccessKind::Read));
        assert!(b.check_access(n1, page, AccessKind::Write));
        assert!(!b.check_access(n1, page, AccessKind::Execute));
        assert!(!b.check_access(n2, page, AccessKind::Read));
    }

    #[test]
    fn shared_segment_grants_mixed_permissions() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let n2 = b.register_node().unwrap();
        let n3 = b.register_node().unwrap();
        let seg = b
            .share_segment(
                16,
                &[(n1, PtFlags::rw(), 0x9000), (n2, PtFlags::ro(), 0xA000)],
            )
            .unwrap();
        let page = seg.first_page;
        assert!(b.check_access(n1, page, AccessKind::Write));
        assert!(b.check_access(n2, page, AccessKind::Read));
        assert!(!b.check_access(n2, page, AccessKind::Write));
        assert!(!b.check_access(n3, page, AccessKind::Read));
        // Mapped into both members' system tables at their NPAs.
        assert_eq!(b.translate(n1, 0x9000).unwrap().target_page, page);
        assert_eq!(b.translate(n2, 0xA000).unwrap().target_page, page);
    }

    #[test]
    fn shared_pages_marked_with_all_ones_node_field() {
        let mut b = small_broker();
        let n1 = b.register_node().unwrap();
        let seg = b.share_segment(1, &[(n1, PtFlags::ro(), 0)]).unwrap();
        let entry = b.acm().entry(seg.first_page).unwrap();
        assert!(entry.is_shared());
    }

    #[test]
    fn segment_too_large_rejected() {
        let mut b = small_broker();
        b.register_node().unwrap();
        let err = b.share_segment(1 << 30, &[]).unwrap_err();
        assert!(matches!(err, BrokerError::SegmentTooLarge { .. }));
    }

    #[test]
    fn free_page_returns_memory_and_clears_acm() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let page = b.demand_map(n, 0).unwrap();
        b.free_page(n, 0).unwrap();
        assert!(!b.check_access(n, page, AccessKind::Read));
        assert_eq!(b.owned_pages(n), 0);
        assert_eq!(b.translate(n, 0), None);
    }

    #[test]
    fn migration_moves_ownership_and_mappings() {
        let mut b = small_broker();
        let from = b.register_node().unwrap();
        let to = b.register_node().unwrap();
        let p0 = b.demand_map(from, 10).unwrap();
        let p1 = b.demand_map(from, 11).unwrap();
        let report = b.migrate_node(from, to).unwrap();
        assert_eq!(report.pages_moved, 2);
        assert_eq!(report.acm_writes, 2);
        assert_eq!(report.translation_invalidations, 2);
        assert!(b.check_access(to, p0, AccessKind::Read));
        assert!(!b.check_access(from, p1, AccessKind::Read));
        assert_eq!(b.translate(to, 10).unwrap().target_page, p0);
        assert_eq!(b.translate(from, 10), None);
    }

    #[test]
    fn migration_carries_shared_segment_memberships() {
        let mut b = small_broker();
        let from = b.register_node().unwrap();
        let to = b.register_node().unwrap();
        let other = b.register_node().unwrap();
        b.demand_map(from, 10).unwrap();
        let seg = b
            .share_segment(
                8,
                &[
                    (from, PtFlags::rw(), 0x9000),
                    (other, PtFlags::ro(), 0xA000),
                ],
            )
            .unwrap();
        let report = b.migrate_node(from, to).unwrap();
        assert_eq!(report.pages_moved, 1);
        assert_eq!(
            report.shared_pages_moved, 8,
            "the shared membership must migrate, not be silently dropped"
        );
        assert_eq!(report.translation_invalidations, 1 + 8);
        // The new node sees the segment under the old NPAs with the old
        // rights; the old node has lost both mapping and rights.
        assert_eq!(b.translate(to, 0x9000).unwrap().target_page, seg.first_page);
        assert_eq!(b.translate(from, 0x9000), None);
        assert!(b.check_access(to, seg.first_page, AccessKind::Write));
        assert!(!b.check_access(from, seg.first_page, AccessKind::Read));
        // The uninvolved member is untouched.
        assert!(b.check_access(other, seg.first_page, AccessKind::Read));
        assert_eq!(
            b.translate(other, 0xA000).unwrap().target_page,
            seg.first_page
        );
        // The member record now names the new node.
        let members = &b.shared_segments()[0].members;
        assert!(members.iter().any(|&(n, _, _)| n == to));
        assert!(!members.iter().any(|&(n, _, _)| n == from));
    }

    #[test]
    fn evacuation_relocates_reachable_pages_and_reports_them() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let pages: Vec<u64> = (0..50).map(|i| b.demand_map(n, i).unwrap()).collect();
        let quarantine = Quarantine::Module {
            index: 1,
            stride: 4,
        };
        let doomed: Vec<u64> = pages.iter().copied().filter(|p| p % 4 == 1).collect();
        assert!(!doomed.is_empty(), "the stride must hit some allocations");
        let (report, relocations) = b.quarantine_and_evacuate(quarantine, true).unwrap();
        assert_eq!(report.pages_evacuated, doomed.len() as u64);
        assert_eq!(report.pages_lost, 0, "a severed link loses no data");
        assert_eq!(report.bytes_copied % PAGE_BYTES, 0);
        assert!(report.capacity_pages_lost > 0);
        // Data relocations carry the real NPA; rebuilt table pages ride
        // along under the sentinel NPA so in-flight walks can redirect.
        let (table_moves, data_moves): (Vec<&PageRelocation>, Vec<&PageRelocation>) =
            relocations.iter().partition(|r| r.npa_page == u64::MAX);
        assert_eq!(data_moves.len(), doomed.len());
        assert_eq!(table_moves.len(), report.table_pages_rebuilt as usize);
        for r in table_moves {
            assert!(r.new_fam_page.is_some(), "tables are always rebuildable");
        }
        for r in data_moves {
            let new_fam = r.new_fam_page.expect("evacuable pages relocate");
            assert!(!quarantine.contains(new_fam), "destination must survive");
            assert_eq!(b.translate(n, r.npa_page).unwrap().target_page, new_fam);
            assert!(b.check_access(n, new_fam, AccessKind::Read));
            assert!(!b.check_access(n, r.old_fam_page, AccessKind::Read));
        }
        // Future allocations never land on quarantined pages.
        for i in 100..200 {
            let p = b.demand_map(n, i).unwrap();
            assert!(!quarantine.contains(p));
        }
    }

    #[test]
    fn dead_node_loses_pages_and_unmaps_them() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        for i in 0..50 {
            b.demand_map(n, i).unwrap();
        }
        let quarantine = Quarantine::Module {
            index: 0,
            stride: 4,
        };
        let (report, relocations) = b.quarantine_and_evacuate(quarantine, false).unwrap();
        assert_eq!(report.pages_evacuated, 0);
        assert!(report.pages_lost > 0, "a dead module destroys data");
        for r in &relocations {
            assert_eq!(r.new_fam_page, None);
            assert_eq!(
                b.translate(n, r.npa_page),
                None,
                "lost mappings are removed so a re-touch demand-faults"
            );
        }
        // A re-touch of a lost NPA maps a fresh, surviving page.
        let lost_npa = relocations[0].npa_page;
        let fresh = b.demand_map(n, lost_npa).unwrap();
        assert!(!quarantine.contains(fresh));
    }

    #[test]
    fn evacuation_rebuilds_table_pages_on_failed_media() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        b.demand_map(n, 42).unwrap();
        // Quarantine exactly the pages holding the node's table, as a
        // media-failure range; the broker must rebuild them.
        let table_page = b.system_table(n).unwrap().root_addr() / PAGE_BYTES;
        let quarantine = Quarantine::Range {
            first_page: table_page,
            pages: 1,
        };
        let (report, _) = b.quarantine_and_evacuate(quarantine, false).unwrap();
        assert_eq!(report.table_pages_rebuilt, 1);
        let rebuilt_root = b.system_table(n).unwrap().root_addr() / PAGE_BYTES;
        assert!(!quarantine.contains(rebuilt_root));
        // The logical mapping survived the rebuild.
        assert!(b.translate(n, 42).is_some());
    }

    #[test]
    fn unknown_node_is_an_error() {
        let mut b = small_broker();
        let err = b.demand_map(NodeId::new(9), 0).unwrap_err();
        assert_eq!(err, BrokerError::UnknownNode(NodeId::new(9)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut b = MemoryBroker::new(BrokerConfig {
            fam_bytes: 16 << 20, // 16 MB: ~4K usable pages
            ..BrokerConfig::default()
        });
        let n = b.register_node().unwrap();
        let mut npa = 0u64;
        let err = loop {
            match b.demand_map(n, npa) {
                Ok(_) => npa += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, BrokerError::OutOfMemory);
        assert!(npa > 1000, "most pages were allocatable first");
    }

    #[test]
    fn node_limit_enforced() {
        let mut b = MemoryBroker::new(BrokerConfig {
            max_nodes: 1,
            ..BrokerConfig::default()
        });
        b.register_node().unwrap();
        assert_eq!(b.register_node().unwrap_err(), BrokerError::TooManyNodes);
    }

    #[test]
    fn system_table_walkable_by_stu() {
        let mut b = small_broker();
        let n = b.register_node().unwrap();
        let page = b.demand_map(n, 42).unwrap();
        let table = b.system_table(n).unwrap();
        let walk = table.walk(42);
        assert_eq!(walk.mapping.unwrap().target_page, page);
        assert_eq!(walk.steps.len(), 4, "4-level system page table");
        // Interior pages live in FAM's usable region.
        for step in &walk.steps {
            assert!(b.layout().is_usable(FamAddr(step.entry_addr)));
        }
    }
}
