//! The Fig. 5 FAM address-space layout.

use fam_vm::{FamAddr, PAGE_BYTES};

use crate::AcmWidth;

/// Bytes per 1 GB sharing region.
pub const REGION_BYTES: u64 = 1 << 30;
/// Bits in each region's sharing bitmap (Fig. 5: 64 K bits = 8 KB).
pub const BITMAP_BITS: u64 = 64 * 1024;
/// Bytes per region bitmap.
pub const BITMAP_BYTES: u64 = BITMAP_BITS / 8;

/// Which usable FAM pages are permanently off-limits after a failure.
///
/// Pages interleave page-granular across the pool's modules, so a
/// whole-module failure quarantines every `stride`-th page; a media
/// failure quarantines a contiguous page range. Membership is pure
/// arithmetic — no allocation, no lookup structure — which is what
/// lets the quarantine live inside the `Copy` [`FamLayout`] and be
/// consulted on the data path for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Quarantine {
    /// Nothing quarantined (the healthy default).
    #[default]
    None,
    /// Every page `p` with `p % stride == index`: module `index` of a
    /// `stride`-module interleaved pool is gone.
    Module {
        /// The failed module's index.
        index: usize,
        /// Number of modules pages interleave across.
        stride: usize,
    },
    /// The contiguous pages `first_page .. first_page + pages`.
    Range {
        /// First quarantined FAM page.
        first_page: u64,
        /// Number of quarantined pages.
        pages: u64,
    },
}

impl Quarantine {
    /// Whether FAM page `page` is quarantined.
    pub fn contains(&self, page: u64) -> bool {
        match *self {
            Quarantine::None => false,
            Quarantine::Module { index, stride } => page % stride as u64 == index as u64,
            Quarantine::Range { first_page, pages } => {
                page >= first_page && page < first_page + pages
            }
        }
    }

    /// Whether any page at all is quarantined.
    pub fn is_active(&self) -> bool {
        *self != Quarantine::None
    }
}

/// The carve-up of a FAM module's physical space (Fig. 5): a usable
/// region, followed by the per-page access-control metadata, followed
/// by the per-1 GB sharing bitmaps.
///
/// All metadata addresses are *derivable from the FAM address alone*
/// (§III-A): the STU computes `MTAdd + (fam_page × acm_bytes)` without
/// any lookup structure — the property this type encapsulates.
///
/// # Examples
///
/// ```
/// use fam_broker::{AcmWidth, FamLayout};
/// use fam_vm::FamAddr;
///
/// let layout = FamLayout::new(16 << 30, AcmWidth::W16);
/// let a = layout.acm_addr(FamAddr(0));
/// let b = layout.acm_addr(FamAddr(4096));
/// assert_eq!(b - a, 2); // 16 bits of ACM per 4 KB page
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamLayout {
    total_bytes: u64,
    acm_width: AcmWidth,
    usable_bytes: u64,
    acm_base: u64,
    bitmap_base: u64,
    quarantine: Quarantine,
}

impl FamLayout {
    /// Lays out a FAM module of `total_bytes` with the given ACM width.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not a whole number of pages or is too
    /// small to hold any usable memory plus its metadata.
    pub fn new(total_bytes: u64, acm_width: AcmWidth) -> FamLayout {
        assert_eq!(total_bytes % PAGE_BYTES, 0, "FAM size must be page-aligned");
        let acm_bytes_per_page = acm_width.bytes();
        // Solve for the largest page-aligned usable size such that
        // usable + ACM + bitmaps fits. Bitmaps: one per (possibly
        // partial) 1 GB usable region, allocated regardless of sharing
        // (§III-A: overhead < 0.0001%).
        let mut usable_pages = total_bytes / PAGE_BYTES;
        loop {
            let usable = usable_pages * PAGE_BYTES;
            let acm = usable_pages * acm_bytes_per_page;
            let regions = usable.div_ceil(REGION_BYTES);
            let bitmaps = regions * BITMAP_BYTES;
            let meta = (acm + bitmaps).next_multiple_of(PAGE_BYTES);
            if usable + meta <= total_bytes {
                let acm_base = usable;
                let bitmap_base = usable + acm;
                assert!(usable_pages > 0, "FAM too small for metadata");
                return FamLayout {
                    total_bytes,
                    acm_width,
                    usable_bytes: usable,
                    acm_base,
                    bitmap_base,
                    quarantine: Quarantine::None,
                };
            }
            usable_pages -= 1;
        }
    }

    /// Total module capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes available for data pages (everything below
    /// [`FamLayout::acm_base`]).
    pub fn usable_bytes(&self) -> u64 {
        self.usable_bytes
    }

    /// Number of usable data pages.
    pub fn usable_pages(&self) -> u64 {
        self.usable_bytes / PAGE_BYTES
    }

    /// The ACM width this layout was built for.
    pub fn acm_width(&self) -> AcmWidth {
        self.acm_width
    }

    /// Start of the ACM region (the paper's `MTAdd`).
    pub fn acm_base(&self) -> u64 {
        self.acm_base
    }

    /// Start of the sharing-bitmap region.
    pub fn bitmap_base(&self) -> u64 {
        self.bitmap_base
    }

    /// Whether `addr` falls in the usable (data) region.
    pub fn is_usable(&self, addr: FamAddr) -> bool {
        addr.0 < self.usable_bytes
    }

    /// Byte address of the ACM entry for the page containing `addr`
    /// — `MTAdd + fam_page × acm_bytes` (§III-A).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not in the usable region (metadata has no
    /// metadata).
    pub fn acm_addr(&self, addr: FamAddr) -> u64 {
        assert!(self.is_usable(addr), "no ACM for metadata addresses");
        self.acm_base + addr.page() * self.acm_width.bytes()
    }

    /// Number of pages whose ACM shares one 64-byte block with the
    /// given page — the spatial-locality constant the paper leans on
    /// (32 pages for 16-bit ACM, so one block covers a 128 KB region).
    pub fn acm_pages_per_block(&self) -> u64 {
        64 / self.acm_width.bytes()
    }

    /// The 1 GB region index of a usable address.
    pub fn region_of(&self, addr: FamAddr) -> u64 {
        addr.0 / REGION_BYTES
    }

    /// Byte address of the sharing bitmap for `addr`'s 1 GB region.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not in the usable region.
    pub fn bitmap_addr(&self, addr: FamAddr) -> u64 {
        assert!(self.is_usable(addr), "no bitmap for metadata addresses");
        self.bitmap_base + self.region_of(addr) * BITMAP_BYTES
    }

    /// Metadata overhead as a fraction of total capacity.
    pub fn metadata_overhead(&self) -> f64 {
        (self.total_bytes - self.usable_bytes) as f64 / self.total_bytes as f64
    }

    /// The quarantine in force.
    pub fn quarantine(&self) -> Quarantine {
        self.quarantine
    }

    /// Installs a quarantine. Recovery installs exactly one per run;
    /// installing `Quarantine::None` lifts it (tests only).
    pub fn set_quarantine(&mut self, quarantine: Quarantine) {
        self.quarantine = quarantine;
    }

    /// Whether the page containing `addr` is permanently off-limits.
    pub fn is_quarantined(&self, addr: FamAddr) -> bool {
        self.quarantine.contains(addr.page())
    }

    /// Number of *usable* pages the quarantine removes from service.
    pub fn quarantined_pages(&self) -> u64 {
        let usable = self.usable_pages();
        match self.quarantine {
            Quarantine::None => 0,
            Quarantine::Module { index, stride } => {
                let (index, stride) = (index as u64, stride as u64);
                if index < usable {
                    (usable - index).div_ceil(stride)
                } else {
                    0
                }
            }
            Quarantine::Range { first_page, pages } => {
                let end = (first_page + pages).min(usable);
                end.saturating_sub(first_page.min(usable))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout16() -> FamLayout {
        FamLayout::new(16 << 30, AcmWidth::W16)
    }

    #[test]
    fn regions_are_ordered_and_disjoint() {
        let l = layout16();
        assert!(l.usable_bytes() < l.acm_base() + 1);
        assert!(l.acm_base() < l.bitmap_base());
        assert!(l.bitmap_base() < l.total_bytes());
        // Bitmaps fit inside the module.
        let regions = l.usable_bytes().div_ceil(REGION_BYTES);
        assert!(l.bitmap_base() + regions * BITMAP_BYTES <= l.total_bytes());
    }

    #[test]
    fn acm_addresses_are_dense_and_derivable() {
        let l = layout16();
        assert_eq!(l.acm_addr(FamAddr(0)), l.acm_base());
        assert_eq!(l.acm_addr(FamAddr(PAGE_BYTES)), l.acm_base() + 2);
        // Same page, any offset: same entry.
        assert_eq!(l.acm_addr(FamAddr(123)), l.acm_addr(FamAddr(0)));
    }

    #[test]
    fn one_block_covers_32_pages_at_16_bit() {
        let l = layout16();
        assert_eq!(l.acm_pages_per_block(), 32);
        let a = l.acm_addr(FamAddr(0)) / 64;
        let b = l.acm_addr(FamAddr(31 * PAGE_BYTES)) / 64;
        let c = l.acm_addr(FamAddr(32 * PAGE_BYTES)) / 64;
        assert_eq!(a, b, "pages 0..31 share a block");
        assert_ne!(a, c, "page 32 starts the next block");
    }

    #[test]
    fn width_changes_density() {
        let l8 = FamLayout::new(16 << 30, AcmWidth::W8);
        let l32 = FamLayout::new(16 << 30, AcmWidth::W32);
        assert_eq!(l8.acm_pages_per_block(), 64);
        assert_eq!(l32.acm_pages_per_block(), 16);
        assert!(l8.usable_bytes() > l32.usable_bytes());
    }

    #[test]
    fn bitmap_per_region() {
        let l = layout16();
        assert_eq!(l.bitmap_addr(FamAddr(0)), l.bitmap_base());
        assert_eq!(
            l.bitmap_addr(FamAddr(REGION_BYTES)),
            l.bitmap_base() + BITMAP_BYTES
        );
        assert_eq!(l.region_of(FamAddr(REGION_BYTES - 1)), 0);
        assert_eq!(l.region_of(FamAddr(REGION_BYTES)), 1);
    }

    #[test]
    fn overhead_is_negligible() {
        let l = layout16();
        assert!(
            l.metadata_overhead() < 0.002,
            "got {}",
            l.metadata_overhead()
        );
        assert!(l.metadata_overhead() > 0.0);
    }

    #[test]
    #[should_panic(expected = "no ACM for metadata addresses")]
    fn metadata_has_no_metadata() {
        let l = layout16();
        l.acm_addr(FamAddr(l.acm_base()));
    }

    #[test]
    fn small_module_still_lays_out() {
        let l = FamLayout::new(8 << 20, AcmWidth::W16);
        assert!(l.usable_pages() > 0);
        assert!(l.usable_bytes() < l.total_bytes());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_size_rejected() {
        let _ = FamLayout::new((16 << 30) + 1, AcmWidth::W16);
    }

    #[test]
    fn quarantine_membership_is_arithmetic() {
        let module = Quarantine::Module {
            index: 2,
            stride: 4,
        };
        assert!(module.contains(2));
        assert!(module.contains(6));
        assert!(!module.contains(3));
        let range = Quarantine::Range {
            first_page: 10,
            pages: 5,
        };
        assert!(range.contains(10));
        assert!(range.contains(14));
        assert!(!range.contains(15));
        assert!(!Quarantine::None.contains(0));
        assert!(!Quarantine::None.is_active());
        assert!(module.is_active() && range.is_active());
    }

    #[test]
    fn layout_quarantine_counts_usable_pages_only() {
        let mut l = layout16();
        assert_eq!(l.quarantined_pages(), 0);
        assert!(!l.is_quarantined(FamAddr(0)));
        l.set_quarantine(Quarantine::Module {
            index: 1,
            stride: 4,
        });
        let usable = l.usable_pages();
        assert_eq!(l.quarantined_pages(), (usable - 1).div_ceil(4));
        assert!(l.is_quarantined(FamAddr(PAGE_BYTES)));
        assert!(!l.is_quarantined(FamAddr(0)));
        // A range clipped by the end of the usable region.
        l.set_quarantine(Quarantine::Range {
            first_page: usable - 3,
            pages: 100,
        });
        assert_eq!(l.quarantined_pages(), 3);
    }
}
