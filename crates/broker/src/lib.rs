//! The centralized memory broker for FAM systems — the reproduction's
//! equivalent of Opal (Kommareddy et al., SAND2018-9199).
//!
//! The broker is the *system-level* memory manager (§II-C): nodes'
//! OSes manage an imaginary flat node-physical space, and the broker
//! owns the real FAM, deciding which FAM page backs which node page,
//! maintaining each node's system page table (the NPA→FAM table the
//! STU walks), and writing the access-control metadata (ACM) and
//! shared-page bitmaps laid out in FAM itself (Fig. 5).
//!
//! * [`FamLayout`] — the Fig. 5 address arithmetic: where a page's ACM
//!   lives, where a 1 GB region's sharing bitmap lives.
//! * [`AcmStore`] — functional storage of ACM entries and bitmaps,
//!   plus the [`AcmEntry`] bit-level encoding (owner node id + R/W/E).
//! * [`MemoryBroker`] — node registration, on-demand FAM page
//!   allocation, system-page-table maintenance, page sharing with
//!   mixed permissions, page migration with logical node ids (§VI).
//!
//! # Examples
//!
//! ```
//! use fam_broker::{BrokerConfig, MemoryBroker};
//!
//! let mut broker = MemoryBroker::new(BrokerConfig::default());
//! let node = broker.register_node().unwrap();
//! let fam_page = broker.demand_map(node, 0x8_0000).unwrap();
//! assert!(broker.check_access(node, fam_page, fam_broker::AccessKind::Read));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod acm;
mod broker;
mod layout;
mod logical;

pub use acm::{AccessKind, AcmEntry, AcmStore, AcmWidth};
pub use broker::{
    BrokerConfig, BrokerError, EvacuationReport, MemoryBroker, MigrationReport, PageRelocation,
    SharedSegment,
};
pub use layout::{FamLayout, Quarantine};
pub use logical::{JobId, LogicalNodeMap};
